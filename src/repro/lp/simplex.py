"""A self-contained two-phase tableau simplex solver.

This is the pure-Python fallback backend for the LP relaxations of
Section 4.3.  It handles problems of the form

    min/max  c . x
    s.t.     A x <= b      (b may be negative)
             lo <= x <= hi

by shifting variables to ``y = x - lo >= 0``, turning finite upper bounds
into extra rows, and running the classic two-phase method with **Bland's
rule** (smallest-index pivoting), which guarantees termination.

It is dense and unoptimized by design: its job is to be obviously correct
and to cross-validate the scipy backend in tests, not to be fast.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from ..errors import InfeasibleLPError, LPError, UnboundedLPError

EPS = 1e-9


def _pivot(tableau: List[List[float]], basis: List[int], row: int, col: int) -> None:
    """Pivot the tableau on (row, col), updating the basis."""
    pivot_value = tableau[row][col]
    inverse = 1.0 / pivot_value
    tableau[row] = [value * inverse for value in tableau[row]]
    for r, current in enumerate(tableau):
        if r == row:
            continue
        factor = current[col]
        if abs(factor) > EPS:
            pivot_row = tableau[row]
            tableau[r] = [
                value - factor * pivot_row[c] for c, value in enumerate(current)
            ]
    basis[row] = col


def _choose_entering(objective_row: Sequence[float], num_columns: int) -> Optional[int]:
    """Bland's rule: the smallest-index column with a negative reduced cost."""
    for col in range(num_columns):
        if objective_row[col] < -EPS:
            return col
    return None


def _choose_leaving(
    tableau: List[List[float]], col: int, num_rows: int, rhs_col: int
) -> Optional[int]:
    """Minimum-ratio test with Bland-style tie-breaking on basis index."""
    best_row = None
    best_ratio = None
    for row in range(num_rows):
        coefficient = tableau[row][col]
        if coefficient > EPS:
            ratio = tableau[row][rhs_col] / coefficient
            if best_ratio is None or ratio < best_ratio - EPS:
                best_ratio = ratio
                best_row = row
    return best_row


def _run_simplex(
    tableau: List[List[float]],
    basis: List[int],
    num_structural_columns: int,
    max_iterations: int,
) -> None:
    """Optimize the tableau in place; the objective row is the last row."""
    num_rows = len(tableau) - 1
    rhs_col = len(tableau[0]) - 1
    for _ in range(max_iterations):
        entering = _choose_entering(tableau[-1], num_structural_columns)
        if entering is None:
            return
        leaving = _choose_leaving(tableau, entering, num_rows, rhs_col)
        if leaving is None:
            raise UnboundedLPError("objective unbounded along an entering column")
        _pivot(tableau, basis, leaving, entering)
    raise LPError(f"simplex did not converge within {max_iterations} iterations")


def solve_standard(
    objective: Sequence[float],
    rows: Sequence[Sequence[float]],
    rhs: Sequence[float],
    max_iterations: int = 100_000,
) -> Tuple[List[float], float]:
    """Solve ``min c.x  s.t.  A x <= b,  x >= 0`` (``b`` may be negative).

    Returns ``(x, value)``.

    Raises
    ------
    InfeasibleLPError, UnboundedLPError, LPError
    """
    num_vars = len(objective)
    num_rows = len(rows)
    if any(len(row) != num_vars for row in rows):
        raise LPError("constraint row width does not match objective length")
    if len(rhs) != num_rows:
        raise LPError("rhs length does not match row count")

    # Normalize rows so every RHS is non-negative; track slack direction.
    norm_rows: List[List[float]] = []
    norm_rhs: List[float] = []
    slack_sign: List[int] = []
    for row, b in zip(rows, rhs):
        if b < 0:
            norm_rows.append([-a for a in row])
            norm_rhs.append(-b)
            slack_sign.append(-1)
        else:
            norm_rows.append(list(row))
            norm_rhs.append(float(b))
            slack_sign.append(+1)

    # Columns: structural | slacks | artificials | RHS.
    num_slacks = num_rows
    artificial_rows = [i for i in range(num_rows) if slack_sign[i] < 0]
    num_artificials = len(artificial_rows)
    num_columns = num_vars + num_slacks + num_artificials
    artificial_col = {
        row: num_vars + num_slacks + k for k, row in enumerate(artificial_rows)
    }

    tableau: List[List[float]] = []
    basis: List[int] = []
    for i in range(num_rows):
        line = [0.0] * (num_columns + 1)
        for j in range(num_vars):
            line[j] = norm_rows[i][j]
        line[num_vars + i] = float(slack_sign[i])
        if i in artificial_col:
            line[artificial_col[i]] = 1.0
            basis.append(artificial_col[i])
        else:
            basis.append(num_vars + i)
        line[-1] = norm_rhs[i]
        tableau.append(line)

    if num_artificials:
        # Phase 1: minimize the sum of artificial variables.
        phase1 = [0.0] * (num_columns + 1)
        for col in artificial_col.values():
            phase1[col] = 1.0
        # Express the phase-1 objective in terms of the non-basic variables.
        for i in artificial_rows:
            phase1 = [p - t for p, t in zip(phase1, tableau[i])]
        tableau.append(phase1)
        _run_simplex(tableau, basis, num_columns, max_iterations)
        if tableau[-1][-1] < -EPS * max(1.0, max(norm_rhs, default=1.0)) - 1e-7:
            raise InfeasibleLPError(
                f"phase-1 optimum {-tableau[-1][-1]:.3e} > 0: no feasible point"
            )
        tableau.pop()
        # Drive any artificial still in the basis out of it (degenerate rows).
        for row_index, b in enumerate(basis):
            if b >= num_vars + num_slacks:
                replaced = False
                for col in range(num_vars + num_slacks):
                    if abs(tableau[row_index][col]) > EPS:
                        _pivot(tableau, basis, row_index, col)
                        replaced = True
                        break
                if not replaced:
                    # Entire row is zero: the constraint was redundant.
                    continue

    # Phase 2: original objective, artificial columns forbidden.
    objective_row = [0.0] * (num_columns + 1)
    for j in range(num_vars):
        objective_row[j] = float(objective[j])
    for col in artificial_col.values():
        objective_row[col] = 0.0
    # Express in terms of non-basic variables.
    for row_index, b in enumerate(basis):
        coefficient = objective_row[b]
        if abs(coefficient) > EPS:
            objective_row = [
                o - coefficient * t for o, t in zip(objective_row, tableau[row_index])
            ]
    tableau.append(objective_row)
    _run_simplex(tableau, basis, num_vars + num_slacks, max_iterations)

    solution = [0.0] * num_vars
    for row_index, b in enumerate(basis):
        if b < num_vars:
            solution[b] = tableau[row_index][-1]
    value = sum(c * x for c, x in zip(objective, solution))
    return solution, value


def solve_bounded(
    objective: Sequence[float],
    rows: Sequence[Sequence[float]],
    rhs: Sequence[float],
    bounds: Sequence[Tuple[float, float]],
    sense: str = "min",
    max_iterations: int = 100_000,
) -> Tuple[List[float], float]:
    """Solve ``min/max c.x  s.t.  A x <= b,  lo <= x <= hi``.

    Shifts each variable by its lower bound and adds one row per finite
    upper bound, then delegates to :func:`solve_standard`.
    """
    if sense not in ("min", "max"):
        raise LPError(f"sense must be 'min' or 'max', got {sense!r}")
    num_vars = len(objective)
    if len(bounds) != num_vars:
        raise LPError("bounds length does not match objective length")
    lower = [lo for lo, _ in bounds]
    upper = [hi for _, hi in bounds]

    effective_objective = list(objective)
    if sense == "max":
        effective_objective = [-c for c in effective_objective]

    # Shift: y = x - lo, so A x <= b  becomes  A y <= b - A lo.
    shifted_rows = [list(row) for row in rows]
    shifted_rhs = [
        b - sum(a * lo for a, lo in zip(row, lower)) for row, b in zip(rows, rhs)
    ]
    for j in range(num_vars):
        if upper[j] != float("inf"):
            bound_row = [0.0] * num_vars
            bound_row[j] = 1.0
            shifted_rows.append(bound_row)
            shifted_rhs.append(upper[j] - lower[j])

    y, _ = solve_standard(
        effective_objective, shifted_rows, shifted_rhs, max_iterations=max_iterations
    )
    x = [yj + lo for yj, lo in zip(y, lower)]
    value = sum(c * xi for c, xi in zip(objective, x))
    return x, value
