"""A small linear-programming model layer.

The relaxed support measures (Section 4.3) are LPs of the form

    min/max  c . x
    s.t.     A_ub x <= b_ub
             lo <= x <= hi

This module provides :class:`LinearProgram` for assembling such problems by
named variables and :func:`solve` which dispatches to scipy's HiGHS when
available and to the bundled pure-Python simplex otherwise.  Both backends
are cross-validated in the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..errors import LPError


@dataclass
class LinearProgram:
    """A named-variable LP: ``optimize c.x  s.t.  A x <= b,  lo <= x <= hi``.

    Rows are "<=" constraints; use :meth:`add_ge_constraint` for ">=" rows
    (stored negated).  Variables default to bounds ``[0, 1]`` because every
    LP in the paper is a 0/1 relaxation.
    """

    sense: str = "min"
    _variables: Dict[str, int] = field(default_factory=dict)
    _objective: List[float] = field(default_factory=list)
    _lower: List[float] = field(default_factory=list)
    _upper: List[float] = field(default_factory=list)
    _rows: List[Dict[int, float]] = field(default_factory=list)
    _rhs: List[float] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.sense not in ("min", "max"):
            raise LPError(f"sense must be 'min' or 'max', got {self.sense!r}")

    # ------------------------------------------------------------------
    # assembly
    # ------------------------------------------------------------------
    def add_variable(
        self,
        name: str,
        objective: float = 0.0,
        lower: float = 0.0,
        upper: float = 1.0,
    ) -> int:
        """Register a variable; returns its column index."""
        if name in self._variables:
            raise LPError(f"duplicate variable {name!r}")
        if lower > upper:
            raise LPError(f"variable {name!r} has lower {lower} > upper {upper}")
        index = len(self._objective)
        self._variables[name] = index
        self._objective.append(float(objective))
        self._lower.append(float(lower))
        self._upper.append(float(upper))
        return index

    def variable_index(self, name: str) -> int:
        if name not in self._variables:
            raise LPError(f"unknown variable {name!r}")
        return self._variables[name]

    def add_le_constraint(self, terms: Dict[str, float], rhs: float) -> None:
        """Add ``sum coeff * var <= rhs``."""
        row = {self.variable_index(name): float(coeff) for name, coeff in terms.items()}
        self._rows.append(row)
        self._rhs.append(float(rhs))

    def add_ge_constraint(self, terms: Dict[str, float], rhs: float) -> None:
        """Add ``sum coeff * var >= rhs`` (stored as a negated <= row)."""
        self.add_le_constraint(
            {name: -coeff for name, coeff in terms.items()}, -rhs
        )

    # ------------------------------------------------------------------
    # views
    # ------------------------------------------------------------------
    @property
    def num_variables(self) -> int:
        return len(self._objective)

    @property
    def num_constraints(self) -> int:
        return len(self._rows)

    def variable_names(self) -> List[str]:
        ordered = sorted(self._variables.items(), key=lambda kv: kv[1])
        return [name for name, _ in ordered]

    def dense_rows(self) -> Tuple[List[List[float]], List[float]]:
        """The constraint system as dense ``(A, b)`` for the simplex backend."""
        n = self.num_variables
        dense = []
        for row in self._rows:
            coefficients = [0.0] * n
            for index, coeff in row.items():
                coefficients[index] = coeff
            dense.append(coefficients)
        return dense, list(self._rhs)

    def objective_vector(self) -> List[float]:
        return list(self._objective)

    def bounds(self) -> List[Tuple[float, float]]:
        return list(zip(self._lower, self._upper))


@dataclass(frozen=True)
class LPSolution:
    """Optimal value + per-variable assignment of a solved LP."""

    value: float
    assignment: Dict[str, float]
    backend: str

    def __getitem__(self, name: str) -> float:
        return self.assignment[name]


def _solve_with_scipy(program: LinearProgram) -> Optional[LPSolution]:
    """Solve via scipy.optimize.linprog (HiGHS); None if scipy is absent."""
    try:
        from scipy.optimize import linprog
    except ImportError:  # pragma: no cover - scipy is present in CI
        return None
    dense, rhs = program.dense_rows()
    objective = program.objective_vector()
    if program.sense == "max":
        objective = [-c for c in objective]
    result = linprog(
        c=objective,
        A_ub=dense if dense else None,
        b_ub=rhs if rhs else None,
        bounds=program.bounds(),
        method="highs",
    )
    if not result.success:
        from ..errors import InfeasibleLPError, UnboundedLPError

        if result.status == 2:
            raise InfeasibleLPError(result.message)
        if result.status == 3:
            raise UnboundedLPError(result.message)
        raise LPError(f"scipy linprog failed: {result.message}")
    value = float(result.fun)
    if program.sense == "max":
        value = -value
    names = program.variable_names()
    assignment = {name: float(x) for name, x in zip(names, result.x)}
    return LPSolution(value=value, assignment=assignment, backend="scipy-highs")


def _solve_with_simplex(program: LinearProgram) -> LPSolution:
    """Solve with the bundled pure-Python two-phase simplex."""
    from .simplex import solve_bounded

    dense, rhs = program.dense_rows()
    solution_vector, value = solve_bounded(
        objective=program.objective_vector(),
        rows=dense,
        rhs=rhs,
        bounds=program.bounds(),
        sense=program.sense,
    )
    names = program.variable_names()
    assignment = {name: x for name, x in zip(names, solution_vector)}
    return LPSolution(value=value, assignment=assignment, backend="simplex")


def solve(program: LinearProgram, backend: str = "auto") -> LPSolution:
    """Solve an LP.

    Parameters
    ----------
    backend:
        ``"auto"`` (scipy when importable, else simplex), ``"scipy"``, or
        ``"simplex"``.
    """
    if backend not in ("auto", "scipy", "simplex"):
        raise LPError(f"unknown backend {backend!r}")
    if backend in ("auto", "scipy"):
        solution = _solve_with_scipy(program)
        if solution is not None:
            return solution
        if backend == "scipy":
            raise LPError("scipy backend requested but scipy is not importable")
    return _solve_with_simplex(program)
