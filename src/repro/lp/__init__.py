"""Linear-programming substrate: model layer + two-phase simplex fallback."""

from .model import LinearProgram, LPSolution, solve
from .simplex import solve_bounded, solve_standard

__all__ = [
    "LinearProgram",
    "LPSolution",
    "solve",
    "solve_bounded",
    "solve_standard",
]
