"""Hypergraph framework: hypergraphs, duals, construction, overlap semantics."""

from .hypergraph import (
    DualHypergraph,
    Hyperedge,
    Hypergraph,
    dual_hypergraph,
)
from .construction import (
    HypergraphBundle,
    instance_hypergraph,
    instance_hypergraph_from,
    occurrence_hypergraph,
    occurrence_hypergraph_from,
)
from .overlap import (
    OVERLAP_KINDS,
    OverlapGraph,
    OverlapStatistics,
    edge_overlap,
    harmful_overlap,
    instance_overlap_graph,
    occurrence_overlap_graph,
    overlap_statistics,
    overlaps,
    simple_overlap,
    structural_overlap,
)

__all__ = [
    "DualHypergraph",
    "Hyperedge",
    "Hypergraph",
    "dual_hypergraph",
    "HypergraphBundle",
    "instance_hypergraph",
    "instance_hypergraph_from",
    "occurrence_hypergraph",
    "occurrence_hypergraph_from",
    "OVERLAP_KINDS",
    "OverlapGraph",
    "OverlapStatistics",
    "edge_overlap",
    "harmful_overlap",
    "instance_overlap_graph",
    "occurrence_overlap_graph",
    "overlap_statistics",
    "overlaps",
    "simple_overlap",
    "structural_overlap",
]
