"""Hypergraphs (paper Definition 3.1.1) and their dual (Definition 3.1.2).

A hypergraph ``H = (V, E)`` has vertices ``V`` and edges that are non-empty
subsets of ``V``.  Edges carry **labels** (``f1``, ``S3``, ...) because the
paper's occurrence hypergraph distinguishes edges with identical vertex sets
coming from different occurrences (Fig. 2: six labeled edges over one vertex
set ``{1, 2, 3}``).

The dual ``H* = (E, X)`` swaps roles: its vertices are the edge labels of
``H`` and it has one edge ``X_v`` per vertex ``v`` of ``H`` collecting all
``H``-edges containing ``v``.
"""

from __future__ import annotations

from typing import (
    Dict,
    FrozenSet,
    Hashable,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from ..errors import HypergraphError

HVertex = Hashable
EdgeLabel = Hashable


class Hyperedge:
    """One labeled hyperedge: an identifier plus a vertex set."""

    __slots__ = ("label", "vertices")

    def __init__(self, label: EdgeLabel, vertices: Iterable[HVertex]) -> None:
        vertex_set = frozenset(vertices)
        if not vertex_set:
            raise HypergraphError(f"hyperedge {label!r} must be non-empty")
        self.label = label
        self.vertices: FrozenSet[HVertex] = vertex_set

    def __contains__(self, vertex: HVertex) -> bool:
        return vertex in self.vertices

    def __len__(self) -> int:
        return len(self.vertices)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Hyperedge):
            return NotImplemented
        return self.label == other.label and self.vertices == other.vertices

    def __hash__(self) -> int:
        return hash((self.label, self.vertices))

    def __repr__(self) -> str:
        members = ", ".join(sorted(map(repr, self.vertices)))
        return f"<Hyperedge {self.label!r} {{{members}}}>"


class Hypergraph:
    """A labeled-edge hypergraph.

    Edges are stored in insertion order; all iteration is deterministic.

    Examples
    --------
    >>> h = Hypergraph()
    >>> h.add_edge("e1", [1, 2, 3])
    >>> h.add_edge("e2", [3, 4])
    >>> h.num_vertices, h.num_edges
    (4, 2)
    """

    __slots__ = ("_edges", "_edge_index", "_incidence", "name")

    def __init__(self, name: str = "") -> None:
        self._edges: List[Hyperedge] = []
        self._edge_index: Dict[EdgeLabel, int] = {}
        self._incidence: Dict[HVertex, Set[EdgeLabel]] = {}
        self.name = name

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_edge(self, label: EdgeLabel, vertices: Iterable[HVertex]) -> None:
        """Add a labeled hyperedge; labels must be unique."""
        if label in self._edge_index:
            raise HypergraphError(f"duplicate hyperedge label {label!r}")
        edge = Hyperedge(label, vertices)
        self._edge_index[label] = len(self._edges)
        self._edges.append(edge)
        for vertex in edge.vertices:
            self._incidence.setdefault(vertex, set()).add(label)

    @classmethod
    def from_edge_sets(
        cls, edge_sets: Sequence[Iterable[HVertex]], prefix: str = "e", name: str = ""
    ) -> "Hypergraph":
        """Build from plain vertex sets, auto-labeling ``e1, e2, ...``."""
        hypergraph = cls(name=name)
        for i, vertices in enumerate(edge_sets, start=1):
            hypergraph.add_edge(f"{prefix}{i}", vertices)
        return hypergraph

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        return len(self._incidence)

    @property
    def num_edges(self) -> int:
        return len(self._edges)

    def vertices(self) -> List[HVertex]:
        return sorted(self._incidence, key=repr)

    def edges(self) -> List[Hyperedge]:
        return list(self._edges)

    def edge_labels(self) -> List[EdgeLabel]:
        return [edge.label for edge in self._edges]

    def edge(self, label: EdgeLabel) -> Hyperedge:
        if label not in self._edge_index:
            raise HypergraphError(f"no hyperedge labeled {label!r}")
        return self._edges[self._edge_index[label]]

    def has_vertex(self, vertex: HVertex) -> bool:
        return vertex in self._incidence

    def edges_containing(self, vertex: HVertex) -> List[Hyperedge]:
        """All edges incident to ``vertex`` (the dual edge ``X_vertex``)."""
        labels = self._incidence.get(vertex)
        if labels is None:
            raise HypergraphError(f"vertex {vertex!r} is not in the hypergraph")
        return [self._edges[self._edge_index[lbl]] for lbl in sorted(labels, key=repr)]

    def vertex_degree(self, vertex: HVertex) -> int:
        """Number of edges containing ``vertex``."""
        if vertex not in self._incidence:
            raise HypergraphError(f"vertex {vertex!r} is not in the hypergraph")
        return len(self._incidence[vertex])

    def max_vertex_degree(self) -> int:
        """The largest number of edges sharing one vertex (0 when empty)."""
        if not self._incidence:
            return 0
        return max(len(labels) for labels in self._incidence.values())

    # ------------------------------------------------------------------
    # structural properties
    # ------------------------------------------------------------------
    def is_uniform(self) -> bool:
        """True when all edges have the same cardinality.

        Occurrence/instance hypergraphs are always uniform because every
        edge is the image of the same pattern node set (Section 4.4).
        """
        sizes = {len(edge) for edge in self._edges}
        return len(sizes) <= 1

    def uniformity(self) -> Optional[int]:
        """The common edge size ``k`` for a k-uniform hypergraph, else None."""
        sizes = {len(edge) for edge in self._edges}
        if len(sizes) == 1:
            return next(iter(sizes))
        return None

    def is_simple(self) -> bool:
        """True when no edge's vertex set is a subset of another's

        (Definition 3.1.1's *simple hypergraph*; edge labels are ignored,
        but two edges with identical vertex sets violate simplicity).
        """
        edges = self._edges
        for i, first in enumerate(edges):
            for j, second in enumerate(edges):
                if i != j and first.vertices <= second.vertices:
                    return False
        return True

    def overlapping_edge_pairs(self) -> List[Tuple[EdgeLabel, EdgeLabel]]:
        """All unordered pairs of distinct edges sharing >= 1 vertex."""
        pairs: Set[Tuple[EdgeLabel, EdgeLabel]] = set()
        for labels in self._incidence.values():
            members = sorted(labels, key=repr)
            for i in range(len(members)):
                for j in range(i + 1, len(members)):
                    pairs.add((members[i], members[j]))
        return sorted(pairs, key=repr)

    def restrict_vertices(self, keep: Iterable[HVertex]) -> "Hypergraph":
        """Sub-hypergraph keeping only ``keep`` vertices; drops emptied edges."""
        keep_set = set(keep)
        restricted = Hypergraph(name=f"{self.name}|restricted" if self.name else "")
        for edge in self._edges:
            remaining = edge.vertices & keep_set
            if remaining:
                restricted.add_edge(edge.label, remaining)
        return restricted

    def __len__(self) -> int:
        return self.num_edges

    def __repr__(self) -> str:
        name = f" {self.name!r}" if self.name else ""
        return f"<Hypergraph{name} |V|={self.num_vertices} |E|={self.num_edges}>"


class DualHypergraph:
    """The dual ``H* = (E, X)`` of a hypergraph ``H`` (Definition 3.1.2).

    Vertices of the dual are the edge labels of ``H``; for every vertex
    ``v`` of ``H`` the dual has an edge ``X_v`` containing the labels of all
    ``H``-edges incident to ``v``.
    """

    __slots__ = ("primal", "_dual",)

    def __init__(self, primal: Hypergraph) -> None:
        self.primal = primal
        self._dual = Hypergraph(name=f"dual({primal.name})" if primal.name else "dual")
        for vertex in primal.vertices():
            incident = [edge.label for edge in primal.edges_containing(vertex)]
            self._dual.add_edge(("X", vertex), incident)

    @property
    def hypergraph(self) -> Hypergraph:
        """The dual, as an ordinary hypergraph over edge labels."""
        return self._dual

    def dual_edge(self, vertex: HVertex) -> Hyperedge:
        """``X_v``: the dual edge for a primal vertex ``v``."""
        return self._dual.edge(("X", vertex))

    def vertices(self) -> List[EdgeLabel]:
        """The dual's vertices = the primal's edge labels."""
        return self._dual.vertices()

    def __repr__(self) -> str:
        return f"<DualHypergraph of {self.primal!r}>"


def dual_hypergraph(primal: Hypergraph) -> DualHypergraph:
    """Construct the dual hypergraph of ``primal``."""
    return DualHypergraph(primal)
