"""Overlap semantics: simple, harmful, and structural overlap + overlap graphs.

Three notions of "two occurrences overlap" appear in the paper:

* **simple (vertex) overlap** — Def. 2.2.3: the image vertex sets intersect;
* **harmful overlap** — Def. 4.5.1 (Fiedler & Borgelt): some pattern node has
  *both* of its images inside the intersection;
* **structural overlap** — Def. 4.5.2 (new in this paper): some transitive
  node pair ``(v, w)`` satisfies ``f1(v) == f2(w)`` inside the intersection.

Both HO and SO imply simple overlap; neither implies the other (Figs. 9/10).
The overlap graph (Def. 2.2.5) can be built under any of the three
semantics; the MIS measure on a sparser (SO/HO) overlap graph is a variant
measure the paper suggests in Section 4.5.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..graph.automorphism import transitive_pairs
from ..graph.labeled_graph import Vertex
from ..graph.pattern import Pattern
from ..isomorphism.matcher import Instance, Occurrence

OVERLAP_KINDS = ("simple", "edge", "harmful", "structural")


def simple_overlap(first: Occurrence, second: Occurrence) -> bool:
    """Vertex overlap of two occurrences (Def. 2.2.3)."""
    return bool(first.vertex_set & second.vertex_set)


def edge_overlap(pattern: Pattern, first: Occurrence, second: Occurrence) -> bool:
    """Edge overlap of two occurrences (Def. 2.2.4)."""
    return bool(first.edge_set(pattern) & second.edge_set(pattern))


def harmful_overlap(pattern: Pattern, first: Occurrence, second: Occurrence) -> bool:
    """Harmful overlap (Def. 4.5.1).

    True when some pattern node ``v`` has both images ``f1(v)`` and
    ``f2(v)`` inside ``f1(V_P) ∩ f2(V_P)``.
    """
    intersection = first.vertex_set & second.vertex_set
    if not intersection:
        return False
    first_map = first.mapping
    second_map = second.mapping
    return any(
        first_map[v] in intersection and second_map[v] in intersection
        for v in pattern.nodes()
    )


def structural_overlap(
    pattern: Pattern,
    first: Occurrence,
    second: Occurrence,
    pairs: Optional[Set[Tuple[Vertex, Vertex]]] = None,
) -> bool:
    """Structural overlap (Def. 4.5.2).

    True when some pair ``(v, w)`` transitive in a connected subpattern of
    ``P`` satisfies ``f1(v) == f2(w)`` (the shared image automatically lies
    in the intersection).  Pass ``pairs`` (from
    :func:`repro.graph.automorphism.transitive_pairs`) to amortize the
    automorphism work across many occurrence pairs.
    """
    intersection = first.vertex_set & second.vertex_set
    if not intersection:
        return False
    if pairs is None:
        pairs = transitive_pairs(pattern)
    first_map = first.mapping
    second_map = second.mapping
    return any(
        first_map[v] == second_map[w] and first_map[v] in intersection
        for v, w in pairs
    )


def overlaps(
    kind: str,
    pattern: Pattern,
    first: Occurrence,
    second: Occurrence,
    pairs: Optional[Set[Tuple[Vertex, Vertex]]] = None,
) -> bool:
    """Dispatch on overlap ``kind`` in :data:`OVERLAP_KINDS`."""
    if kind == "simple":
        return simple_overlap(first, second)
    if kind == "edge":
        return edge_overlap(pattern, first, second)
    if kind == "harmful":
        return harmful_overlap(pattern, first, second)
    if kind == "structural":
        return structural_overlap(pattern, first, second, pairs=pairs)
    raise ValueError(f"unknown overlap kind {kind!r}; expected one of {OVERLAP_KINDS}")


@dataclass
class OverlapGraph:
    """The occurrence/instance overlap graph (Def. 2.2.5).

    Plain undirected graph: ``nodes`` are occurrence/instance indices,
    ``adjacency`` maps each node to the set of overlapping nodes.
    """

    nodes: List[int]
    adjacency: Dict[int, Set[int]]
    kind: str = "simple"

    @property
    def num_nodes(self) -> int:
        return len(self.nodes)

    @property
    def num_edges(self) -> int:
        return sum(len(neighbors) for neighbors in self.adjacency.values()) // 2

    def neighbors(self, node: int) -> Set[int]:
        return self.adjacency[node]

    def degree(self, node: int) -> int:
        return len(self.adjacency[node])

    def has_edge(self, u: int, v: int) -> bool:
        return v in self.adjacency.get(u, ())

    def density(self) -> float:
        """Edges / possible edges (0 for graphs with < 2 nodes)."""
        n = self.num_nodes
        if n < 2:
            return 0.0
        return 2.0 * self.num_edges / (n * (n - 1))

    def complement_adjacency(self) -> Dict[int, Set[int]]:
        """Adjacency of the complement graph (used by clique-based solvers)."""
        node_set = set(self.nodes)
        return {node: node_set - self.adjacency[node] - {node} for node in self.nodes}


def _candidate_pairs_from_incidence(
    incidence: Dict[Vertex, List[int]]
) -> Set[Tuple[int, int]]:
    """All index pairs co-incident on at least one key, as sorted tuples."""
    candidate_pairs: Set[Tuple[int, int]] = set()
    for members in incidence.values():
        members_sorted = sorted(members)
        for i in range(len(members_sorted)):
            for j in range(i + 1, len(members_sorted)):
                candidate_pairs.add((members_sorted[i], members_sorted[j]))
    return candidate_pairs


def occurrence_overlap_graph(
    pattern: Pattern,
    occurrences: Sequence[Occurrence],
    kind: str = "simple",
) -> OverlapGraph:
    """Build the occurrence overlap graph under the chosen semantics.

    Construction is incidence-driven: an inverted index (data vertex ->
    occurrences, or data edge -> occurrences for ``edge``) yields the
    candidate pairs directly.  For ``simple`` and ``edge`` semantics the
    co-incident pairs *are* the overlapping pairs — no pairwise test runs
    at all; HO/SO run their pairwise tests only over vertex-sharing
    candidate pairs (both semantics imply a shared vertex).
    """
    if kind not in OVERLAP_KINDS:
        raise ValueError(
            f"unknown overlap kind {kind!r}; expected one of {OVERLAP_KINDS}"
        )
    adjacency: Dict[int, Set[int]] = {occ.index: set() for occ in occurrences}
    by_index = {occ.index: occ for occ in occurrences}

    incidence: Dict[Vertex, List[int]] = {}
    if kind == "edge":
        for occ in occurrences:
            for edge in occ.edge_set(pattern):
                incidence.setdefault(edge, []).append(occ.index)
    else:
        for occ in occurrences:
            for vertex in occ.vertex_set:
                incidence.setdefault(vertex, []).append(occ.index)
    candidate_pairs = _candidate_pairs_from_incidence(incidence)

    if kind in ("simple", "edge"):
        # Sharing an incidence key is exactly the overlap condition.
        for a, b in candidate_pairs:
            adjacency[a].add(b)
            adjacency[b].add(a)
        return OverlapGraph(nodes=sorted(adjacency), adjacency=adjacency, kind=kind)

    pairs = transitive_pairs(pattern) if kind == "structural" else None
    for a, b in sorted(candidate_pairs):
        if overlaps(kind, pattern, by_index[a], by_index[b], pairs=pairs):
            adjacency[a].add(b)
            adjacency[b].add(a)
    return OverlapGraph(nodes=sorted(adjacency), adjacency=adjacency, kind=kind)


def instance_overlap_graph(instances: Sequence[Instance]) -> OverlapGraph:
    """Instance overlap graph under simple-vertex-overlap semantics."""
    adjacency: Dict[int, Set[int]] = {inst.index: set() for inst in instances}
    incidence: Dict[Vertex, List[int]] = {}
    for inst in instances:
        for vertex in inst.vertex_set:
            incidence.setdefault(vertex, []).append(inst.index)
    for a, b in _candidate_pairs_from_incidence(incidence):
        adjacency[a].add(b)
        adjacency[b].add(a)
    return OverlapGraph(nodes=sorted(adjacency), adjacency=adjacency, kind="simple")


@dataclass(frozen=True)
class OverlapStatistics:
    """Counts of overlapping occurrence pairs under each semantics."""

    num_occurrences: int
    simple_pairs: int
    harmful_pairs: int
    structural_pairs: int

    @property
    def total_pairs(self) -> int:
        n = self.num_occurrences
        return n * (n - 1) // 2


def overlap_statistics(
    pattern: Pattern, occurrences: Sequence[Occurrence], method: str = "indexed"
) -> OverlapStatistics:
    """Count overlapping pairs under all three semantics.

    With ``method="indexed"`` (default) candidate pairs come from the
    vertex-incidence index: pairs sharing a vertex are exactly the simple
    overlaps, and only those pairs are tested for HO/SO (both semantics
    imply a shared image vertex — the Section 4.5 containment theorems).
    ``method="brute"`` is the quadratic reference pass, which additionally
    *asserts* those containment theorems pair by pair; the property test
    suite checks both methods agree on random workloads.
    """
    items = list(occurrences)
    pairs = transitive_pairs(pattern)
    if method == "indexed":
        # Incidence is keyed by list *position*, not occurrence index:
        # caller-built occurrence lists may carry duplicate indices, and
        # the counts must match the position-based brute pass exactly.
        incidence: Dict[Vertex, List[int]] = {}
        for position, occ in enumerate(items):
            for vertex in occ.vertex_set:
                incidence.setdefault(vertex, []).append(position)
        candidate_pairs = _candidate_pairs_from_incidence(incidence)
        harmful_count = structural_count = 0
        for a, b in candidate_pairs:
            first, second = items[a], items[b]
            harmful_count += harmful_overlap(pattern, first, second)
            structural_count += structural_overlap(pattern, first, second, pairs=pairs)
        return OverlapStatistics(
            num_occurrences=len(items),
            simple_pairs=len(candidate_pairs),
            harmful_pairs=harmful_count,
            structural_pairs=structural_count,
        )
    if method != "brute":
        raise ValueError(f"unknown method {method!r}; expected 'indexed' or 'brute'")
    simple_count = harmful_count = structural_count = 0
    for i in range(len(items)):
        for j in range(i + 1, len(items)):
            first, second = items[i], items[j]
            is_simple = simple_overlap(first, second)
            is_harmful = harmful_overlap(pattern, first, second)
            is_structural = structural_overlap(pattern, first, second, pairs=pairs)
            if is_harmful and not is_simple:
                raise AssertionError("harmful overlap without simple overlap")
            if is_structural and not is_simple:
                raise AssertionError("structural overlap without simple overlap")
            simple_count += is_simple
            harmful_count += is_harmful
            structural_count += is_structural
    return OverlapStatistics(
        num_occurrences=len(items),
        simple_pairs=simple_count,
        harmful_pairs=harmful_count,
        structural_pairs=structural_count,
    )
