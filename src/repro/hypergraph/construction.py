"""Building occurrence / instance hypergraphs (Definitions 3.1.3–3.1.4).

Given a pattern ``P`` with occurrences ``f_1..f_m`` in a data graph ``G``:

* the **occurrence hypergraph** has one vertex per distinct pattern-node
  image and one edge ``e_i = f_i(V_P)`` per occurrence, labeled ``f_i``;
* the **instance hypergraph** has one edge per *instance* (distinct image
  subgraph), labeled ``S_i``.

Both are k-uniform with ``k = |V_P|`` (every occurrence is injective).

Occurrence enumeration routes through the data graph's acceleration index
by default (see :mod:`repro.index`); pass ``index=False`` for the
brute-force reference path.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..graph.labeled_graph import LabeledGraph
from ..graph.pattern import Pattern
from ..index.graph_index import IndexArg
from ..isomorphism.matcher import (
    Instance,
    Occurrence,
    find_occurrences,
    group_into_instances,
)
from .hypergraph import Hypergraph


def occurrence_hypergraph_from(
    occurrences: Sequence[Occurrence], name: str = "occurrence-hypergraph"
) -> Hypergraph:
    """Build the occurrence hypergraph from pre-enumerated occurrences."""
    hypergraph = Hypergraph(name=name)
    for occurrence in occurrences:
        hypergraph.add_edge(occurrence.label(), occurrence.vertex_set)
    return hypergraph


def instance_hypergraph_from(
    instances: Sequence[Instance], name: str = "instance-hypergraph"
) -> Hypergraph:
    """Build the instance hypergraph from pre-grouped instances."""
    hypergraph = Hypergraph(name=name)
    for instance in instances:
        hypergraph.add_edge(instance.label(), instance.vertex_set)
    return hypergraph


def occurrence_hypergraph(
    pattern: Pattern,
    data: LabeledGraph,
    limit: Optional[int] = None,
    index: IndexArg = None,
) -> Hypergraph:
    """Enumerate occurrences of ``pattern`` in ``data`` and build ``H_O``."""
    return occurrence_hypergraph_from(
        find_occurrences(pattern, data, limit=limit, index=index)
    )


def instance_hypergraph(
    pattern: Pattern,
    data: LabeledGraph,
    limit: Optional[int] = None,
    index: IndexArg = None,
) -> Hypergraph:
    """Enumerate instances of ``pattern`` in ``data`` and build ``H_I``."""
    occurrences = find_occurrences(pattern, data, limit=limit, index=index)
    return instance_hypergraph_from(group_into_instances(pattern, occurrences))


class HypergraphBundle:
    """Everything the framework derives from one (pattern, graph) pair.

    Computing occurrences is the expensive step, so callers that need
    several views should build one bundle and share it between measures
    (this is what :mod:`repro.analysis.spectrum` does).  The derived views
    — instances and both hypergraphs — are computed **lazily** on first
    access and cached: occurrence-only measures (MNI, MI, occurrence
    counts) never pay for instance grouping, which is a large share of the
    miner's per-candidate cost.
    """

    __slots__ = (
        "pattern",
        "data",
        "occurrences",
        "_instances",
        "_occurrence_hg",
        "_instance_hg",
    )

    def __init__(
        self,
        pattern: Pattern,
        data: LabeledGraph,
        occurrences: List[Occurrence],
        instances: Optional[List[Instance]] = None,
        occurrence_hg: Optional[Hypergraph] = None,
        instance_hg: Optional[Hypergraph] = None,
    ) -> None:
        self.pattern = pattern
        self.data = data
        self.occurrences = occurrences
        self._instances = instances
        self._occurrence_hg = occurrence_hg
        self._instance_hg = instance_hg

    @classmethod
    def build(
        cls,
        pattern: Pattern,
        data: LabeledGraph,
        limit: Optional[int] = None,
        index: IndexArg = None,
    ) -> "HypergraphBundle":
        """Enumerate occurrences once; derived views materialize on demand."""
        return cls(
            pattern=pattern,
            data=data,
            occurrences=find_occurrences(pattern, data, limit=limit, index=index),
        )

    @property
    def instances(self) -> List[Instance]:
        if self._instances is None:
            self._instances = group_into_instances(self.pattern, self.occurrences)
        return self._instances

    @property
    def occurrence_hg(self) -> Hypergraph:
        if self._occurrence_hg is None:
            self._occurrence_hg = occurrence_hypergraph_from(self.occurrences)
        return self._occurrence_hg

    @property
    def instance_hg(self) -> Hypergraph:
        if self._instance_hg is None:
            self._instance_hg = instance_hypergraph_from(self.instances)
        return self._instance_hg

    @property
    def num_occurrences(self) -> int:
        return len(self.occurrences)

    @property
    def num_instances(self) -> int:
        return len(self.instances)

    def view(self, which: str) -> Hypergraph:
        """Select ``"occurrence"`` or ``"instance"`` hypergraph by name."""
        if which == "occurrence":
            return self.occurrence_hg
        if which == "instance":
            return self.instance_hg
        raise ValueError(f"unknown hypergraph view {which!r}")
