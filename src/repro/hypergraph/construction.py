"""Building occurrence / instance hypergraphs (Definitions 3.1.3–3.1.4).

Given a pattern ``P`` with occurrences ``f_1..f_m`` in a data graph ``G``:

* the **occurrence hypergraph** has one vertex per distinct pattern-node
  image and one edge ``e_i = f_i(V_P)`` per occurrence, labeled ``f_i``;
* the **instance hypergraph** has one edge per *instance* (distinct image
  subgraph), labeled ``S_i``.

Both are k-uniform with ``k = |V_P|`` (every occurrence is injective).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..graph.labeled_graph import LabeledGraph
from ..graph.pattern import Pattern
from ..isomorphism.matcher import (
    Instance,
    Occurrence,
    find_occurrences,
    group_into_instances,
)
from .hypergraph import Hypergraph


def occurrence_hypergraph_from(
    occurrences: Sequence[Occurrence], name: str = "occurrence-hypergraph"
) -> Hypergraph:
    """Build the occurrence hypergraph from pre-enumerated occurrences."""
    hypergraph = Hypergraph(name=name)
    for occurrence in occurrences:
        hypergraph.add_edge(occurrence.label(), occurrence.vertex_set)
    return hypergraph


def instance_hypergraph_from(
    instances: Sequence[Instance], name: str = "instance-hypergraph"
) -> Hypergraph:
    """Build the instance hypergraph from pre-grouped instances."""
    hypergraph = Hypergraph(name=name)
    for instance in instances:
        hypergraph.add_edge(instance.label(), instance.vertex_set)
    return hypergraph


def occurrence_hypergraph(
    pattern: Pattern, data: LabeledGraph, limit: Optional[int] = None
) -> Hypergraph:
    """Enumerate occurrences of ``pattern`` in ``data`` and build ``H_O``."""
    return occurrence_hypergraph_from(find_occurrences(pattern, data, limit=limit))


def instance_hypergraph(
    pattern: Pattern, data: LabeledGraph, limit: Optional[int] = None
) -> Hypergraph:
    """Enumerate instances of ``pattern`` in ``data`` and build ``H_I``."""
    occurrences = find_occurrences(pattern, data, limit=limit)
    return instance_hypergraph_from(group_into_instances(pattern, occurrences))


@dataclass
class HypergraphBundle:
    """Everything the framework derives from one (pattern, graph) pair.

    Computing occurrences is the expensive step, so callers that need both
    views plus the occurrence list itself should build one bundle and share
    it between measures (this is what :mod:`repro.analysis.spectrum` does).
    """

    pattern: Pattern
    data: LabeledGraph
    occurrences: List[Occurrence]
    instances: List[Instance]
    occurrence_hg: Hypergraph
    instance_hg: Hypergraph

    @classmethod
    def build(
        cls, pattern: Pattern, data: LabeledGraph, limit: Optional[int] = None
    ) -> "HypergraphBundle":
        """Enumerate once; derive both hypergraphs."""
        occurrences = find_occurrences(pattern, data, limit=limit)
        instances = group_into_instances(pattern, occurrences)
        return cls(
            pattern=pattern,
            data=data,
            occurrences=occurrences,
            instances=instances,
            occurrence_hg=occurrence_hypergraph_from(occurrences),
            instance_hg=instance_hypergraph_from(instances),
        )

    @property
    def num_occurrences(self) -> int:
        return len(self.occurrences)

    @property
    def num_instances(self) -> int:
        return len(self.instances)

    def view(self, which: str) -> Hypergraph:
        """Select ``"occurrence"`` or ``"instance"`` hypergraph by name."""
        if which == "occurrence":
            return self.occurrence_hg
        if which == "instance":
            return self.instance_hg
        raise ValueError(f"unknown hypergraph view {which!r}")
