"""Command-line interface: ``python -m repro`` / ``repro-graph``.

Subcommands
-----------
``measure``      compute the support spectrum for a pattern in a graph
``mine``         mine frequent patterns from a graph
``mine-stream``  maintain frequent patterns while replaying a graph-update stream
``serve``        run the long-lived graph service (NDJSON over stdio or TCP)
``watch``        stream standing-query answer-change events (NDJSON)
``partition``    split a graph into edge-disjoint shards on disk
``figure``       regenerate a paper figure worksheet (fig1 .. fig10)
``info``         list registered measures with their properties

Every mining flag default is read off
:data:`repro.mining.spec.DEFAULT_SPEC` — the library's
:class:`~repro.mining.spec.MiningSpec` field defaults are the single
source of truth, shared by ``mine``, ``mine-stream`` and ``serve``
through one argparse parent (``tests/test_mining_spec.py`` pins the
agreement).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .analysis.report import format_hypergraph, format_occurrence_table, format_table
from .analysis.spectrum import measure_spectrum, spectrum_report
from .graph.io import load_graph, load_pattern
from .hypergraph.construction import HypergraphBundle
from .measures.base import available_measures, measure_info
from .mining.spec import DEFAULT_SPEC, STREAM_MODES, MiningSpec
from .partition.partitioner import PARTITION_METHODS


def _spec_parent() -> argparse.ArgumentParser:
    """Shared mining flags, defaults read off :data:`DEFAULT_SPEC`.

    One parent parser feeds ``mine``, ``mine-stream`` and ``serve``; no
    subcommand re-declares a default, so the CLI cannot drift from the
    library again.
    """
    spec = DEFAULT_SPEC
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument("--measure", default=spec.measure, help="support measure name")
    parent.add_argument("--min-support", type=float, default=spec.min_support)
    parent.add_argument("--max-nodes", type=int, default=spec.max_pattern_nodes)
    parent.add_argument("--max-edges", type=int, default=spec.max_pattern_edges)
    parent.add_argument(
        "--lazy",
        action="store_true",
        default=spec.lazy,
        help=(
            "MNI only: decide frequency with threshold-bounded evaluation "
            "(reported supports are capped at the threshold)"
        ),
    )
    parent.add_argument(
        "--no-index",
        action="store_true",
        default=not spec.use_index,
        help="disable the graph acceleration index (brute-force reference path)",
    )
    parent.add_argument(
        "--workers",
        type=int,
        default=spec.workers,
        help="evaluate candidates in this many worker processes",
    )
    parent.add_argument(
        "--shards",
        type=int,
        default=spec.shards,
        help=(
            "partition the data graph into this many edge-disjoint shards and "
            "evaluate support shard-by-shard (results identical to --shards 1)"
        ),
    )
    parent.add_argument(
        "--partition",
        choices=PARTITION_METHODS,
        default=spec.partition_method,
        help="partitioner used when --shards > 1",
    )
    parent.add_argument(
        "--max-resident",
        type=int,
        default=spec.max_resident,
        help=(
            "out-of-core mode: keep at most this many shards' expanded views "
            "in memory, spilling cold shards to disk (requires --shards > 1; "
            "results identical regardless of eviction order)"
        ),
    )
    return parent


def _obs_parent() -> argparse.ArgumentParser:
    """Observability flags shared by ``mine``, ``mine-stream`` and ``serve``."""
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument(
        "--log-level",
        choices=["debug", "info", "warning", "error"],
        default=None,
        help=(
            "emit repro.* logs at this level to stderr (default: silent; "
            "fallback paths that change strategy log at warning)"
        ),
    )
    return parent


def _stream_parent() -> argparse.ArgumentParser:
    """Update-stream flags shared by ``mine-stream`` and ``serve``."""
    spec = DEFAULT_SPEC
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument(
        "--batch-size",
        type=int,
        default=spec.batch_size,
        help="updates applied between refreshes of the frequent-pattern set",
    )
    parent.add_argument(
        "--window",
        type=int,
        default=spec.window,
        metavar="N",
        help=(
            "sliding window: after each batch, expire the oldest live "
            "stream-inserted edges until at most N remain (base-graph edges "
            "never expire; re-inserting an expired edge restarts its age)"
        ),
    )
    return parent


def spec_from_args(args: argparse.Namespace, stream: bool = False) -> MiningSpec:
    """The one place CLI flags become a :class:`MiningSpec`."""
    fields = dict(
        measure=args.measure,
        min_support=args.min_support,
        max_pattern_nodes=args.max_nodes,
        max_pattern_edges=args.max_edges,
        lazy=args.lazy,
        use_index=not args.no_index,
        workers=args.workers,
        shards=args.shards,
        partition_method=args.partition,
        max_resident=args.max_resident,
    )
    if stream:
        fields.update(batch_size=args.batch_size, window=args.window)
        if hasattr(args, "mode"):
            fields["mode"] = args.mode
    return MiningSpec.from_kwargs(**fields)


def _cmd_measure(args: argparse.Namespace) -> int:
    data = load_graph(args.graph)
    pattern = load_pattern(args.pattern)
    spectrum = measure_spectrum(pattern, data)
    print(
        spectrum_report(spectrum, title=f"{pattern.name or 'pattern'} in {data.name}")
    )
    return 0


def _frequent_table(result, title: str) -> str:
    """The frequent-pattern table shared by ``mine`` and ``mine-stream``."""
    rows = [
        [i + 1, fp.num_nodes, fp.num_edges, fp.support, fp.num_occurrences]
        for i, fp in enumerate(result.frequent)
    ]
    return format_table(
        ["#", "nodes", "edges", "support", "occurrences"], rows, title=title
    )


def _cmd_mine(args: argparse.Namespace) -> int:
    from .mining.miner import mine_frequent_patterns

    want_trace = bool(args.profile or args.trace_out)
    if want_trace:
        from .obs import trace

        trace.enable()
    data = load_graph(args.graph)
    result = mine_frequent_patterns(data, spec=spec_from_args(args))
    trace_epilogue: List[str] = []
    if want_trace:
        records = trace.get_trace(trace.last_trace_id())
        if args.profile:
            from .index.graph_index import index_backend
            from .obs import metrics as _metrics
            from .obs.profile import format_profile

            trace_epilogue.append(format_profile(records))
            registry = _metrics.get_registry()
            trace_epilogue.append(
                "index footprint: backend={} bytes={:.0f} intern_entries={:.0f}".format(
                    index_backend(),
                    registry.gauge("repro_index_bytes").value,
                    registry.gauge("repro_index_intern_entries").value,
                )
            )
        if args.trace_out:
            written = trace.export_ndjson(args.trace_out)
            trace_epilogue.append(f"wrote {written} span(s) to {args.trace_out}")
    if args.json:
        from .service.protocol import result_payload

        # The same canonical, stats-free payload the service protocol
        # sends — so a served response diffs 1:1 against a one-shot run.
        import json

        print(json.dumps(result_payload(result), sort_keys=True, indent=2))
        # Keep stdout parseable: the profile goes to stderr in JSON mode.
        for block in trace_epilogue:
            print(block, file=sys.stderr)
        return 0
    print(
        _frequent_table(
            result,
            f"{result.num_frequent} frequent patterns "
            f"(measure={result.measure}, min_support={result.min_support:g})",
        )
    )
    stats = result.stats.as_dict()
    print("\n" + format_table(["counter", "value"], sorted(stats.items())))
    for block in trace_epilogue:
        print("\n" + block)
    return 0


def _cmd_mine_stream(args: argparse.Namespace) -> int:
    from .graph.io import load_update_stream
    from .mining.dynamic import mine_stream

    data = load_graph(args.graph)
    # Validate the stream against the base graph it is about to mutate;
    # malformed records and impossible deletions fail here with a line
    # number instead of halfway through the replay.  window=True relaxes
    # only the checks sliding-window expiry can falsify.
    updates = load_update_stream(args.updates, base=data, window=bool(args.window))
    rows = []
    last = None
    for step in mine_stream(data, updates, spec=spec_from_args(args, stream=True)):
        last = step
        stats = step.result.stats
        rows.append(
            [
                step.batch,
                step.updates_applied,
                step.edges_expired,
                step.num_vertices,
                step.num_edges,
                step.result.num_frequent,
                stats.patterns_evaluated,
                stats.patterns_reused,
                stats.patterns_skipped_unaffected,
            ]
        )
    window_note = f", window={args.window}" if args.window else ""
    shard_note = (
        f", shards={args.shards} ({args.partition})" if args.shards > 1 else ""
    )
    print(
        format_table(
            [
                "batch",
                "updates",
                "expired",
                "|V|",
                "|E|",
                "frequent",
                "evaluated",
                "reused",
                "skipped",
            ],
            rows,
            title=(
                f"mine-stream over {len(updates)} updates "
                f"(mode={args.mode}, measure={args.measure}, "
                f"min_support={args.min_support:g}, "
                f"batch_size={args.batch_size}{window_note}{shard_note})"
            ),
        )
    )
    assert last is not None
    print(
        "\n"
        + _frequent_table(
            last.result,
            f"{last.result.num_frequent} frequent patterns after the stream",
        )
    )
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from .obs import trace
    from .service import GraphService
    from .service.server import serve_stdio, serve_tcp

    # The daemon always collects spans: mine responses echo a trace_id
    # and the `trace` verb replays the span tree.
    trace.enable()
    data = load_graph(args.graph)
    service = GraphService(
        data,
        maintain=spec_from_args(args, stream=True),
        cache_size=args.cache_size,
    )
    try:
        if args.port is not None:
            serve_tcp(service, host=args.host, port=args.port, announce=sys.stdout)
        else:
            serve_stdio(service, sys.stdin, sys.stdout)
    finally:
        service.stop()
    return 0


def _standing_specs_from_args(args: argparse.Namespace, delivery: str):
    """The standing queries a ``watch`` invocation registers."""
    from .mining.standing import StandingSpec

    events = None
    if args.events:
        events = [name.strip() for name in args.events.split(",") if name.strip()]
    common = dict(
        measure=args.measure,
        min_support=args.min_support,
        lazy=args.lazy,
        events=events,
        delivery=delivery,
    )
    specs = [
        StandingSpec.from_kwargs(pattern=load_pattern(path), **common)
        for path in args.patterns
    ]
    if args.threshold or not args.patterns:
        specs.append(
            StandingSpec.from_kwargs(
                kind="threshold",
                max_nodes=args.max_nodes,
                max_edges=args.max_edges,
                **common,
            )
        )
    return specs


def _cmd_watch(args: argparse.Namespace) -> int:
    """``repro watch``: stream standing-query answer changes as NDJSON."""
    import json

    if args.connect:
        return _watch_connect(args)
    if not args.graph or not args.updates:
        print(
            "watch needs either --connect HOST:PORT or --graph plus --updates",
            file=sys.stderr,
        )
        return 2
    from .graph.io import load_update_stream
    from .service import GraphService, answer_payload

    data = load_graph(args.graph)
    updates = load_update_stream(args.updates, base=data, window=bool(args.window))
    specs = _standing_specs_from_args(args, delivery="poll")
    service = GraphService(data, window=args.window)
    try:
        subs = [service.subscribe(spec) for spec in specs]
        for sub in subs:
            print(
                json.dumps(
                    {
                        "event": "subscribed",
                        "subscription": sub.id,
                        "kind": sub.spec.kind,
                        "version": sub.version,
                        "answer": answer_payload(sub.answer_snapshot()),
                    }
                )
            )
        for info in service.stream(updates, batch_size=args.batch_size):
            print(
                json.dumps(
                    {
                        "event": "batch",
                        "version": info.version,
                        "applied": info.applied,
                        "expired": info.expired,
                        "num_vertices": info.num_vertices,
                        "num_edges": info.num_edges,
                    }
                )
            )
            for sub in subs:
                for event in sub.poll():
                    print(json.dumps({"subscription": sub.id, **event.payload()}))
    finally:
        service.stop()
    return 0


def _watch_connect(args: argparse.Namespace) -> int:
    """Thin push-delivery subscriber against a running ``repro serve``."""
    import json
    import socket

    host, _, port = args.connect.rpartition(":")
    if not port.isdigit():
        print(f"--connect expects HOST:PORT, got {args.connect!r}", file=sys.stderr)
        return 2
    specs = _standing_specs_from_args(args, delivery="push")
    sock = socket.create_connection((host or "127.0.0.1", int(port)))
    try:
        reader = sock.makefile("r", encoding="utf-8")
        for i, spec in enumerate(specs):
            # Once the first subscription is live the server may push a
            # notify frame at any moment — correlate each response by the
            # echoed request id, relaying push/event frames seen en route.
            request_id = f"watch-{i}"
            request = {
                "op": "subscribe",
                "v": 1,
                "id": request_id,
                "spec": spec.as_dict(),
            }
            sock.sendall((json.dumps(request) + "\n").encode("utf-8"))
            response = None
            for line in reader:
                frame = json.loads(line)
                if frame.get("id") == request_id:
                    response = frame
                    break
                print(json.dumps(frame), flush=True)
            if response is None:  # server went away mid-handshake
                print(
                    f"connection closed before subscribe {request_id} "
                    "was answered",
                    file=sys.stderr,
                )
                return 1
            print(json.dumps(response), flush=True)
            if not response.get("ok"):
                return 1
        # From here the server pushes notify frames; relay them verbatim
        # until the server goes away or the user interrupts.
        try:
            for line in reader:
                print(line, end="", flush=True)
        except KeyboardInterrupt:  # pragma: no cover - interactive exit
            pass
    finally:
        sock.close()
    return 0


def _cmd_partition(args: argparse.Namespace) -> int:
    from .partition import ShardedIndex, save_partition

    data = load_graph(args.graph)
    if args.rebalance:
        return _cmd_partition_rebalance(args, data)
    sharded = ShardedIndex.build(data, args.shards, args.method)
    manifest = save_partition(sharded, args.outdir)
    _print_partition_summary(sharded, data.name or args.graph)
    print(f"wrote {manifest}")
    return 0


def _cmd_partition_rebalance(args: argparse.Namespace, data) -> int:
    """``repro partition --rebalance``: maintain an existing shard directory.

    Loads the partition from ``outdir``, absorbs any drift between its
    reconstructed graph and the (possibly updated) ``graph`` file as
    ordinary deltas routed to their owning shards, applies the rebalance
    policy, and saves the directory back — re-partitioning from scratch
    only if the maintainer's policy demands it.
    """
    from .partition import (
        RebalancePolicy,
        ShardedIndexMaintainer,
        absorb_graph,
        load_partition,
        save_partition,
    )

    sharded = load_partition(args.outdir)
    policy = RebalancePolicy(
        max_load_factor=args.max_load,
        max_replication=args.max_replication,
    )
    maintainer = ShardedIndexMaintainer(sharded=sharded, policy=policy)
    absorbed = absorb_graph(sharded.graph, data)
    sharded = maintainer.sharded()
    manifest = save_partition(sharded, args.outdir)
    _print_partition_summary(sharded, data.name or args.graph)
    print(
        f"\nabsorbed {absorbed} graph update(s) "
        f"({maintainer.patches_applied} patched, "
        f"{maintainer.rebuilds} re-partition(s)); "
        f"rebalance moved {maintainer.edges_moved} edge(s), "
        f"{maintainer.full_repartitions} full re-partition(s) by policy"
    )
    print(f"wrote {manifest}")
    return 0


def _print_partition_summary(sharded, title: str) -> None:
    rows = [
        [
            shard.shard_id,
            shard.num_vertices,
            shard.num_core_edges,
            len(shard.halo_vertices),
            len(shard.interior_vertices()),
        ]
        for shard in sharded.shards
    ]
    print(
        format_table(
            ["shard", "|V|", "core edges", "halo", "interior"],
            rows,
            title=(
                f"{title}: {sharded.num_shards} shards "
                f"(method={sharded.partition.method})"
            ),
        )
    )
    print(
        f"\nboundary vertices: {len(sharded.boundary_vertices())} / "
        f"{sharded.graph.num_vertices}  "
        f"replication factor: {sharded.replication_factor():.3f}"
    )


def _cmd_figure(args: argparse.Namespace) -> int:
    from .datasets.paper_figures import load_figure
    from .isomorphism.matcher import find_occurrences

    example = load_figure(args.figure_id)
    print(f"{example.figure_id}: {example.title}")
    print(f"  {example.notes}\n")
    occurrences = find_occurrences(example.pattern, example.data_graph)
    print(format_occurrence_table(example.pattern, occurrences))
    bundle = HypergraphBundle.build(example.pattern, example.data_graph)
    print("\n" + format_hypergraph(bundle.occurrence_hg))
    spectrum = measure_spectrum(example.pattern, example.data_graph, bundle=bundle)
    print("\n" + spectrum_report(spectrum))
    if example.expected:
        rows = [[key, value] for key, value in sorted(example.expected.items())]
        print("\n" + format_table(["pinned quantity", "expected"], rows))
    return 0


def _cmd_chain(args: argparse.Namespace) -> int:
    from .measures.bounds import CHAIN_TEXT, verify_bounding_chain

    data = load_graph(args.graph)
    pattern = load_pattern(args.pattern)
    report = verify_bounding_chain(pattern, data)
    print(f"bounding chain: {CHAIN_TEXT}\n")
    print(format_table(["measure", "value"], report.as_rows()))
    if report.holds:
        print("\nall chain relations hold.")
        return 0
    print("\nVIOLATIONS:")
    for violation in report.violations:
        print(f"  - {violation}")
    return 1


def _cmd_overlap(args: argparse.Namespace) -> int:
    from .hypergraph.overlap import (
        harmful_overlap,
        occurrence_overlap_graph,
        simple_overlap,
        structural_overlap,
    )
    from .isomorphism.matcher import find_occurrences
    from .measures.mis import mis_support_of

    data = load_graph(args.graph)
    pattern = load_pattern(args.pattern)
    occurrences = find_occurrences(pattern, data, limit=args.limit)
    print(
        f"{len(occurrences)} occurrences of {pattern.name or 'pattern'} in {data.name}\n"
    )
    rows = []
    for i, first in enumerate(occurrences):
        for second in occurrences[i + 1:]:
            if not simple_overlap(first, second):
                continue
            rows.append(
                [
                    f"({first.label()}, {second.label()})",
                    "yes",
                    "yes" if harmful_overlap(pattern, first, second) else "-",
                    "yes" if structural_overlap(pattern, first, second) else "-",
                ]
            )
    print(format_table(["pair", "simple", "harmful", "structural"], rows))
    mis_rows = []
    for kind in ("simple", "harmful", "structural"):
        graph = occurrence_overlap_graph(pattern, occurrences, kind=kind)
        mis_rows.append([kind, graph.num_edges, mis_support_of(graph)])
    print("\n" + format_table(["semantics", "overlap edges", "MIS"], mis_rows))
    return 0


def _cmd_info(_args: argparse.Namespace) -> int:
    rows = []
    for name in available_measures():
        info = measure_info(name)
        rows.append(
            [
                name,
                info.display_name,
                "yes" if info.anti_monotonic else "no",
                info.complexity,
            ]
        )
    print(
        format_table(
            ["name", "measure", "anti-monotonic", "complexity"],
            rows,
            title="registered support measures",
        )
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-graph",
        description="Support measures for frequent pattern mining (SIGMOD '17 reproduction)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    measure = subparsers.add_parser("measure", help="compute the support spectrum")
    measure.add_argument("graph", help="data graph (.lg file)")
    measure.add_argument("pattern", help="pattern (.lg file)")
    measure.set_defaults(func=_cmd_measure)

    spec_parent = _spec_parent()
    stream_parent = _stream_parent()
    obs_parent = _obs_parent()

    mine = subparsers.add_parser(
        "mine", help="mine frequent patterns", parents=[spec_parent, obs_parent]
    )
    mine.add_argument("graph", help="data graph (.lg file)")
    mine.add_argument(
        "--json",
        action="store_true",
        help=(
            "print the canonical JSON result payload (the same shape the "
            "service protocol sends) instead of the tables"
        ),
    )
    mine.add_argument(
        "--profile",
        action="store_true",
        help=(
            "trace the run and print a per-phase wall/CPU breakdown "
            "(seed enumeration and each lattice level)"
        ),
    )
    mine.add_argument(
        "--trace-out",
        metavar="FILE",
        default=None,
        help="trace the run and write its spans to FILE as NDJSON",
    )
    mine.set_defaults(func=_cmd_mine)

    stream = subparsers.add_parser(
        "mine-stream",
        help="maintain frequent patterns while replaying a graph-update stream",
        parents=[spec_parent, stream_parent, obs_parent],
    )
    stream.add_argument("graph", help="base data graph (.lg file)")
    stream.add_argument(
        "updates", help="update stream (v/e/de/dv lines, applied in order)"
    )
    stream.add_argument(
        "--mode",
        choices=STREAM_MODES,
        default=DEFAULT_SPEC.mode,
        help=(
            "maintenance strategy: delta-patched index + footprint reuse "
            "through the in-process graph service (default), full re-mine "
            "with a rebuilt index, or the index-free brute-force reference"
        ),
    )
    stream.set_defaults(func=_cmd_mine_stream)

    serve = subparsers.add_parser(
        "serve",
        help="run the long-lived graph service (NDJSON over stdio or TCP)",
        parents=[spec_parent, stream_parent, obs_parent],
        description=(
            "Serve the graph as a long-running daemon: one writer applies "
            "update batches (op=update) through the delta-maintained miner, "
            "concurrent readers mine pinned snapshots (op=mine) with results "
            "cached per (version, spec). Speaks newline-delimited JSON on "
            "stdin/stdout, or TCP with --port (0 = ephemeral; the ready "
            "event announces the bound port)."
        ),
    )
    serve.add_argument("graph", help="base data graph (.lg file)")
    serve.add_argument(
        "--port",
        type=int,
        default=None,
        help="serve TCP on this port instead of stdio (0 picks a free port)",
    )
    serve.add_argument("--host", default="127.0.0.1", help="TCP bind address")
    serve.add_argument(
        "--cache-size",
        type=int,
        default=None,
        help="LRU bound on cached results (default: unbounded)",
    )
    serve.set_defaults(func=_cmd_serve)

    spec = DEFAULT_SPEC
    watch = subparsers.add_parser(
        "watch",
        parents=[obs_parent],
        help="stream standing-query answer-change events (NDJSON)",
        description=(
            "Register standing queries — concrete motifs (pattern files) "
            "and/or the spec-level threshold question — and stream their "
            "typed answer-change events as NDJSON, either by replaying an "
            "update stream through an in-process service (--graph/--updates) "
            "or by subscribing to a running `repro serve` daemon (--connect)."
        ),
    )
    watch.add_argument(
        "patterns", nargs="*", help="pattern files (.lg) to watch as standing motifs"
    )
    watch.add_argument("--graph", help="base data graph (.lg) for in-process replay")
    watch.add_argument(
        "--updates", help="update stream (.up) replayed through the service"
    )
    watch.add_argument(
        "--connect",
        metavar="HOST:PORT",
        help="subscribe to a running `repro serve` TCP daemon (push delivery)",
    )
    watch.add_argument(
        "--threshold",
        action="store_true",
        help=(
            "also watch the whole frequent set of the spec-level question "
            "(the default when no pattern files are given)"
        ),
    )
    watch.add_argument("--measure", default=spec.measure, help="support measure name")
    watch.add_argument("--min-support", type=float, default=spec.min_support)
    watch.add_argument("--max-nodes", type=int, default=spec.max_pattern_nodes)
    watch.add_argument("--max-edges", type=int, default=spec.max_pattern_edges)
    watch.add_argument("--lazy", action="store_true", default=spec.lazy)
    watch.add_argument(
        "--events",
        default=None,
        metavar="TYPES",
        help=(
            "comma-separated event-type filter (default: all; note that "
            "filtered streams no longer reconstruct the full answer)"
        ),
    )
    watch.add_argument(
        "--batch-size",
        type=int,
        default=spec.batch_size,
        help="updates applied per dispatched batch (replay mode)",
    )
    watch.add_argument(
        "--window",
        type=int,
        default=spec.window,
        metavar="N",
        help="sliding window for the replayed stream (replay mode)",
    )
    watch.set_defaults(func=_cmd_watch)

    partition = subparsers.add_parser(
        "partition", help="split a graph into edge-disjoint shards on disk"
    )
    partition.add_argument("graph", help="data graph (.lg file)")
    partition.add_argument("outdir", help="output shard directory")
    partition.add_argument("--shards", type=int, default=2, help="number of shards")
    partition.add_argument(
        "--method",
        choices=PARTITION_METHODS,
        default="hash",
        help="edge partitioner",
    )
    partition.add_argument(
        "--rebalance",
        action="store_true",
        help=(
            "maintain the existing shard directory in outdir instead of "
            "re-partitioning: absorb the graph file's drift as deltas "
            "routed to their owning shards, then re-balance overflowing "
            "shards (--shards/--method come from the saved manifest)"
        ),
    )
    partition.add_argument(
        "--max-load",
        type=float,
        default=1.5,
        metavar="FACTOR",
        help=(
            "with --rebalance: a shard may hold at most FACTOR x the ideal "
            "|E|/k core edges before shedding edges (default 1.5)"
        ),
    )
    partition.add_argument(
        "--max-replication",
        type=float,
        default=None,
        metavar="FACTOR",
        help=(
            "with --rebalance: replication-factor ceiling that triggers a "
            "full re-partition instead of local moves (default: disabled)"
        ),
    )
    partition.set_defaults(func=_cmd_partition)

    figure = subparsers.add_parser("figure", help="regenerate a paper figure")
    figure.add_argument("figure_id", help="fig1 .. fig10")
    figure.set_defaults(func=_cmd_figure)

    chain = subparsers.add_parser(
        "chain", help="verify the bounding chain for a pattern in a graph"
    )
    chain.add_argument("graph", help="data graph (.lg file)")
    chain.add_argument("pattern", help="pattern (.lg file)")
    chain.set_defaults(func=_cmd_chain)

    overlap = subparsers.add_parser(
        "overlap", help="classify overlapping occurrence pairs (Section 4.5)"
    )
    overlap.add_argument("graph", help="data graph (.lg file)")
    overlap.add_argument("pattern", help="pattern (.lg file)")
    overlap.add_argument("--limit", type=int, default=200, help="max occurrences")
    overlap.set_defaults(func=_cmd_overlap)

    info = subparsers.add_parser("info", help="list registered measures")
    info.set_defaults(func=_cmd_info)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if getattr(args, "log_level", None):
        from .obs import configure_logging

        configure_logging(args.log_level)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
