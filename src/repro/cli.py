"""Command-line interface: ``python -m repro`` / ``repro-graph``.

Subcommands
-----------
``measure``      compute the support spectrum for a pattern in a graph
``mine``         mine frequent patterns from a graph
``mine-stream``  maintain frequent patterns while replaying a graph-update stream
``partition``    split a graph into edge-disjoint shards on disk
``figure``       regenerate a paper figure worksheet (fig1 .. fig10)
``info``         list registered measures with their properties
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .analysis.report import format_hypergraph, format_occurrence_table, format_table
from .analysis.spectrum import measure_spectrum, spectrum_report
from .graph.io import load_graph, load_pattern
from .hypergraph.construction import HypergraphBundle
from .measures.base import available_measures, measure_info
from .partition.partitioner import PARTITION_METHODS


def _cmd_measure(args: argparse.Namespace) -> int:
    data = load_graph(args.graph)
    pattern = load_pattern(args.pattern)
    spectrum = measure_spectrum(pattern, data)
    print(
        spectrum_report(spectrum, title=f"{pattern.name or 'pattern'} in {data.name}")
    )
    return 0


def _frequent_table(result, title: str) -> str:
    """The frequent-pattern table shared by ``mine`` and ``mine-stream``."""
    rows = [
        [i + 1, fp.num_nodes, fp.num_edges, fp.support, fp.num_occurrences]
        for i, fp in enumerate(result.frequent)
    ]
    return format_table(
        ["#", "nodes", "edges", "support", "occurrences"], rows, title=title
    )


def _cmd_mine(args: argparse.Namespace) -> int:
    from .mining.miner import mine_frequent_patterns

    data = load_graph(args.graph)
    result = mine_frequent_patterns(
        data,
        measure=args.measure,
        min_support=args.min_support,
        max_pattern_nodes=args.max_nodes,
        max_pattern_edges=args.max_edges,
        use_index=not args.no_index,
        workers=args.workers,
        shards=args.shards,
        partition_method=args.partition,
        max_resident=args.max_resident,
    )
    print(
        _frequent_table(
            result,
            f"{result.num_frequent} frequent patterns "
            f"(measure={result.measure}, min_support={result.min_support:g})",
        )
    )
    stats = result.stats.as_dict()
    print("\n" + format_table(["counter", "value"], sorted(stats.items())))
    return 0


def _cmd_mine_stream(args: argparse.Namespace) -> int:
    from .graph.io import load_update_stream
    from .mining.dynamic import mine_stream

    data = load_graph(args.graph)
    # Validate the stream against the base graph it is about to mutate;
    # malformed records and impossible deletions fail here with a line
    # number instead of halfway through the replay.  window=True relaxes
    # only the checks sliding-window expiry can falsify.
    updates = load_update_stream(args.updates, base=data, window=bool(args.window))
    rows = []
    last = None
    for step in mine_stream(
        data,
        updates,
        batch_size=args.batch_size,
        mode=args.mode,
        measure=args.measure,
        min_support=args.min_support,
        max_pattern_nodes=args.max_nodes,
        max_pattern_edges=args.max_edges,
        window=args.window,
        shards=args.shards,
        partition_method=args.partition,
        workers=args.workers,
        max_resident=args.max_resident,
    ):
        last = step
        stats = step.result.stats
        rows.append(
            [
                step.batch,
                step.updates_applied,
                step.edges_expired,
                step.num_vertices,
                step.num_edges,
                step.result.num_frequent,
                stats.patterns_evaluated,
                stats.patterns_reused,
                stats.patterns_skipped_unaffected,
            ]
        )
    window_note = f", window={args.window}" if args.window else ""
    shard_note = (
        f", shards={args.shards} ({args.partition})" if args.shards > 1 else ""
    )
    print(
        format_table(
            [
                "batch",
                "updates",
                "expired",
                "|V|",
                "|E|",
                "frequent",
                "evaluated",
                "reused",
                "skipped",
            ],
            rows,
            title=(
                f"mine-stream over {len(updates)} updates "
                f"(mode={args.mode}, measure={args.measure}, "
                f"min_support={args.min_support:g}, "
                f"batch_size={args.batch_size}{window_note}{shard_note})"
            ),
        )
    )
    assert last is not None
    print(
        "\n"
        + _frequent_table(
            last.result,
            f"{last.result.num_frequent} frequent patterns after the stream",
        )
    )
    return 0


def _cmd_partition(args: argparse.Namespace) -> int:
    from .partition import ShardedIndex, save_partition

    data = load_graph(args.graph)
    if args.rebalance:
        return _cmd_partition_rebalance(args, data)
    sharded = ShardedIndex.build(data, args.shards, args.method)
    manifest = save_partition(sharded, args.outdir)
    _print_partition_summary(sharded, data.name or args.graph)
    print(f"wrote {manifest}")
    return 0


def _cmd_partition_rebalance(args: argparse.Namespace, data) -> int:
    """``repro partition --rebalance``: maintain an existing shard directory.

    Loads the partition from ``outdir``, absorbs any drift between its
    reconstructed graph and the (possibly updated) ``graph`` file as
    ordinary deltas routed to their owning shards, applies the rebalance
    policy, and saves the directory back — re-partitioning from scratch
    only if the maintainer's policy demands it.
    """
    from .partition import (
        RebalancePolicy,
        ShardedIndexMaintainer,
        absorb_graph,
        load_partition,
        save_partition,
    )

    sharded = load_partition(args.outdir)
    policy = RebalancePolicy(
        max_load_factor=args.max_load,
        max_replication=args.max_replication,
    )
    maintainer = ShardedIndexMaintainer(sharded=sharded, policy=policy)
    absorbed = absorb_graph(sharded.graph, data)
    sharded = maintainer.sharded()
    manifest = save_partition(sharded, args.outdir)
    _print_partition_summary(sharded, data.name or args.graph)
    print(
        f"\nabsorbed {absorbed} graph update(s) "
        f"({maintainer.patches_applied} patched, "
        f"{maintainer.rebuilds} re-partition(s)); "
        f"rebalance moved {maintainer.edges_moved} edge(s), "
        f"{maintainer.full_repartitions} full re-partition(s) by policy"
    )
    print(f"wrote {manifest}")
    return 0


def _print_partition_summary(sharded, title: str) -> None:
    rows = [
        [
            shard.shard_id,
            shard.num_vertices,
            shard.num_core_edges,
            len(shard.halo_vertices),
            len(shard.interior_vertices()),
        ]
        for shard in sharded.shards
    ]
    print(
        format_table(
            ["shard", "|V|", "core edges", "halo", "interior"],
            rows,
            title=(
                f"{title}: {sharded.num_shards} shards "
                f"(method={sharded.partition.method})"
            ),
        )
    )
    print(
        f"\nboundary vertices: {len(sharded.boundary_vertices())} / "
        f"{sharded.graph.num_vertices}  "
        f"replication factor: {sharded.replication_factor():.3f}"
    )


def _cmd_figure(args: argparse.Namespace) -> int:
    from .datasets.paper_figures import load_figure
    from .isomorphism.matcher import find_occurrences

    example = load_figure(args.figure_id)
    print(f"{example.figure_id}: {example.title}")
    print(f"  {example.notes}\n")
    occurrences = find_occurrences(example.pattern, example.data_graph)
    print(format_occurrence_table(example.pattern, occurrences))
    bundle = HypergraphBundle.build(example.pattern, example.data_graph)
    print("\n" + format_hypergraph(bundle.occurrence_hg))
    spectrum = measure_spectrum(example.pattern, example.data_graph, bundle=bundle)
    print("\n" + spectrum_report(spectrum))
    if example.expected:
        rows = [[key, value] for key, value in sorted(example.expected.items())]
        print("\n" + format_table(["pinned quantity", "expected"], rows))
    return 0


def _cmd_chain(args: argparse.Namespace) -> int:
    from .measures.bounds import CHAIN_TEXT, verify_bounding_chain

    data = load_graph(args.graph)
    pattern = load_pattern(args.pattern)
    report = verify_bounding_chain(pattern, data)
    print(f"bounding chain: {CHAIN_TEXT}\n")
    print(format_table(["measure", "value"], report.as_rows()))
    if report.holds:
        print("\nall chain relations hold.")
        return 0
    print("\nVIOLATIONS:")
    for violation in report.violations:
        print(f"  - {violation}")
    return 1


def _cmd_overlap(args: argparse.Namespace) -> int:
    from .hypergraph.overlap import (
        harmful_overlap,
        occurrence_overlap_graph,
        simple_overlap,
        structural_overlap,
    )
    from .isomorphism.matcher import find_occurrences
    from .measures.mis import mis_support_of

    data = load_graph(args.graph)
    pattern = load_pattern(args.pattern)
    occurrences = find_occurrences(pattern, data, limit=args.limit)
    print(
        f"{len(occurrences)} occurrences of {pattern.name or 'pattern'} in {data.name}\n"
    )
    rows = []
    for i, first in enumerate(occurrences):
        for second in occurrences[i + 1:]:
            if not simple_overlap(first, second):
                continue
            rows.append(
                [
                    f"({first.label()}, {second.label()})",
                    "yes",
                    "yes" if harmful_overlap(pattern, first, second) else "-",
                    "yes" if structural_overlap(pattern, first, second) else "-",
                ]
            )
    print(format_table(["pair", "simple", "harmful", "structural"], rows))
    mis_rows = []
    for kind in ("simple", "harmful", "structural"):
        graph = occurrence_overlap_graph(pattern, occurrences, kind=kind)
        mis_rows.append([kind, graph.num_edges, mis_support_of(graph)])
    print("\n" + format_table(["semantics", "overlap edges", "MIS"], mis_rows))
    return 0


def _cmd_info(_args: argparse.Namespace) -> int:
    rows = []
    for name in available_measures():
        info = measure_info(name)
        rows.append(
            [
                name,
                info.display_name,
                "yes" if info.anti_monotonic else "no",
                info.complexity,
            ]
        )
    print(
        format_table(
            ["name", "measure", "anti-monotonic", "complexity"],
            rows,
            title="registered support measures",
        )
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-graph",
        description="Support measures for frequent pattern mining (SIGMOD '17 reproduction)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    measure = subparsers.add_parser("measure", help="compute the support spectrum")
    measure.add_argument("graph", help="data graph (.lg file)")
    measure.add_argument("pattern", help="pattern (.lg file)")
    measure.set_defaults(func=_cmd_measure)

    mine = subparsers.add_parser("mine", help="mine frequent patterns")
    mine.add_argument("graph", help="data graph (.lg file)")
    mine.add_argument("--measure", default="mni", help="support measure name")
    mine.add_argument("--min-support", type=float, default=2.0)
    mine.add_argument("--max-nodes", type=int, default=5)
    mine.add_argument("--max-edges", type=int, default=6)
    mine.add_argument(
        "--workers",
        type=int,
        default=1,
        help="evaluate same-level candidates in this many worker processes",
    )
    mine.add_argument(
        "--no-index",
        action="store_true",
        help="disable the graph acceleration index (brute-force reference path)",
    )
    mine.add_argument(
        "--shards",
        type=int,
        default=1,
        help=(
            "partition the data graph into this many edge-disjoint shards and "
            "evaluate support shard-by-shard (results identical to --shards 1)"
        ),
    )
    mine.add_argument(
        "--partition",
        choices=PARTITION_METHODS,
        default="hash",
        help="partitioner used when --shards > 1",
    )
    mine.add_argument(
        "--max-resident",
        type=int,
        default=None,
        help=(
            "out-of-core mode: keep at most this many shards' expanded views "
            "in memory, spilling cold shards to disk (requires --shards > 1; "
            "results identical regardless of eviction order)"
        ),
    )
    mine.set_defaults(func=_cmd_mine)

    stream = subparsers.add_parser(
        "mine-stream",
        help="maintain frequent patterns while replaying a graph-update stream",
    )
    stream.add_argument("graph", help="base data graph (.lg file)")
    stream.add_argument(
        "updates", help="update stream (v/e/de/dv lines, applied in order)"
    )
    stream.add_argument(
        "--batch-size",
        type=int,
        default=1,
        help="updates applied between refreshes of the frequent-pattern set",
    )
    stream.add_argument(
        "--window",
        type=int,
        default=None,
        metavar="N",
        help=(
            "sliding window: after each batch, expire the oldest live "
            "stream-inserted edges until at most N remain (base-graph edges "
            "never expire; re-inserting an expired edge restarts its age)"
        ),
    )
    stream.add_argument(
        "--mode",
        choices=("delta", "rebuild", "brute"),
        default="delta",
        help=(
            "maintenance strategy: delta-patched index + footprint reuse "
            "(default), full re-mine with a rebuilt index, or the "
            "index-free brute-force reference"
        ),
    )
    stream.add_argument("--measure", default="mni", help="support measure name")
    stream.add_argument("--min-support", type=float, default=2.0)
    stream.add_argument("--max-nodes", type=int, default=5)
    stream.add_argument("--max-edges", type=int, default=6)
    stream.add_argument(
        "--shards",
        type=int,
        default=1,
        help=(
            "run the stream over this many edge-disjoint shards; the delta "
            "mode maintains one partition across the whole stream while the "
            "reference modes re-partition per batch (results identical to "
            "--shards 1)"
        ),
    )
    stream.add_argument(
        "--partition",
        choices=PARTITION_METHODS,
        default="hash",
        help="partitioner used when --shards > 1",
    )
    stream.add_argument(
        "--workers",
        type=int,
        default=1,
        help=(
            "evaluate through this many worker processes; the delta mode "
            "keeps one shard-resident pool alive across all batches "
            "(requires --shards > 1), the reference modes parallelize each "
            "per-batch mine"
        ),
    )
    stream.add_argument(
        "--max-resident",
        type=int,
        default=None,
        help=(
            "out-of-core mode: keep at most this many shards' expanded views "
            "in memory across the stream (requires --shards > 1)"
        ),
    )
    stream.set_defaults(func=_cmd_mine_stream)

    partition = subparsers.add_parser(
        "partition", help="split a graph into edge-disjoint shards on disk"
    )
    partition.add_argument("graph", help="data graph (.lg file)")
    partition.add_argument("outdir", help="output shard directory")
    partition.add_argument("--shards", type=int, default=2, help="number of shards")
    partition.add_argument(
        "--method",
        choices=PARTITION_METHODS,
        default="hash",
        help="edge partitioner",
    )
    partition.add_argument(
        "--rebalance",
        action="store_true",
        help=(
            "maintain the existing shard directory in outdir instead of "
            "re-partitioning: absorb the graph file's drift as deltas "
            "routed to their owning shards, then re-balance overflowing "
            "shards (--shards/--method come from the saved manifest)"
        ),
    )
    partition.add_argument(
        "--max-load",
        type=float,
        default=1.5,
        metavar="FACTOR",
        help=(
            "with --rebalance: a shard may hold at most FACTOR x the ideal "
            "|E|/k core edges before shedding edges (default 1.5)"
        ),
    )
    partition.add_argument(
        "--max-replication",
        type=float,
        default=None,
        metavar="FACTOR",
        help=(
            "with --rebalance: replication-factor ceiling that triggers a "
            "full re-partition instead of local moves (default: disabled)"
        ),
    )
    partition.set_defaults(func=_cmd_partition)

    figure = subparsers.add_parser("figure", help="regenerate a paper figure")
    figure.add_argument("figure_id", help="fig1 .. fig10")
    figure.set_defaults(func=_cmd_figure)

    chain = subparsers.add_parser(
        "chain", help="verify the bounding chain for a pattern in a graph"
    )
    chain.add_argument("graph", help="data graph (.lg file)")
    chain.add_argument("pattern", help="pattern (.lg file)")
    chain.set_defaults(func=_cmd_chain)

    overlap = subparsers.add_parser(
        "overlap", help="classify overlapping occurrence pairs (Section 4.5)"
    )
    overlap.add_argument("graph", help="data graph (.lg file)")
    overlap.add_argument("pattern", help="pattern (.lg file)")
    overlap.add_argument("--limit", type=int, default=200, help="max occurrences")
    overlap.set_defaults(func=_cmd_overlap)

    info = subparsers.add_parser("info", help="list registered measures")
    info.set_defaults(func=_cmd_info)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
