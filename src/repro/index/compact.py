"""Compact storage core: interned ids + CSR adjacency behind ``GraphIndex``.

The dict-backed :class:`~repro.index.graph_index.GraphIndex` answers every
query with per-entry Python objects: tuples of vertex objects per label,
nested dicts per vertex, boxed counts per signature.  That representation
is convenient but costs ~100 bytes per entry and a hash lookup per hop.
This module provides :class:`CompactGraphIndex`, a drop-in subclass that
stores the same information in flat :mod:`array` buffers over *interned*
ids:

* a :class:`LabelTable` interns vertex ids and labels to dense ints at the
  graph boundary — slots are assigned in canonical (``repr``) order at
  build time, appended for entries first seen by a patch, and tombstoned
  (never recycled for a different key) on removal;
* **inverted lists** — ``lint -> array('i')`` of member vints, kept in the
  library's canonical ``repr`` order;
* **CSR adjacency rows** — one ``array('i')`` per vertex holding an inline
  label directory followed by the neighbor vints::

      [k, l1, c1, ..., lk, ck,  <c1 neighbors of label l1>, ...]

  directory groups are sorted by lint, neighbors within a group in
  canonical order, so a label-filtered adjacency query is one small header
  scan plus a contiguous slice;
* **label-pair edge lists** — ``(lint, lint) -> array('i')`` of flattened
  ``(u, v)`` vint pairs in canonical edge order.

All decoded query methods (the full ``GraphIndex`` API) return objects
identical — content *and* order — to the dict implementation, which stays
as the brute reference diffed by the equivalence suites.  The matching
engines additionally use the int-level accessors directly and translate
back to user-facing vertices only at result boundaries.

Delta maintenance patches the flat buffers in O(delta): ``array.insert``
and slice deletion are C-level memmoves within one row/list, and every
splice lands at the same canonical position the dict index would use, so
a patched compact index stays structurally identical to a rebuilt one
(``tests/test_compact_index.py`` churns this).  The
:class:`~repro.index.delta.IndexMaintainer` patch-limit fallback applies
unchanged — a rebuild re-interns the table from scratch, which is the
only point where tombstoned slots are reclaimed.
"""

from __future__ import annotations

import sys
from array import array
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from ..graph.labeled_graph import Edge, Label, LabeledGraph, Vertex, normalize_edge
from .graph_index import GraphIndex, _label_pair_key

_EMPTY: Tuple = ()
_EMPTY_ROW = array("i", (0,))


class LabelTable:
    """Interns vertex ids and labels to dense ints (vints / lints).

    Slots are assigned in canonical (``repr``-sorted) order when the table
    is built and appended in arrival order for keys first seen by a patch.
    Slots are never recycled for a *different* key: removing a vertex
    leaves its slot tombstoned in the owning index (label ``-1``), and
    re-adding the same vertex revives the old slot.  Only a rebuild —
    which constructs a fresh table — reclaims retired entries.
    """

    __slots__ = ("vertex_of", "label_of", "_vint_of", "_lint_of")

    def __init__(self, vertices, labels) -> None:
        self.vertex_of: List[Vertex] = list(vertices)
        self.label_of: List[Label] = list(labels)
        self._vint_of: Dict[Vertex, int] = {
            v: i for i, v in enumerate(self.vertex_of)
        }
        self._lint_of: Dict[Label, int] = {
            l: i for i, l in enumerate(self.label_of)
        }

    def vint(self, vertex: Vertex) -> int:
        """The dense id of ``vertex`` (KeyError when never interned)."""
        return self._vint_of[vertex]

    def lint(self, label: Label) -> Optional[int]:
        """The dense id of ``label``, or ``None`` when never interned."""
        return self._lint_of.get(label)

    def intern_vertex(self, vertex: Vertex) -> int:
        """The slot for ``vertex``, appending a fresh one when unseen."""
        vi = self._vint_of.get(vertex)
        if vi is None:
            vi = len(self.vertex_of)
            self.vertex_of.append(vertex)
            self._vint_of[vertex] = vi
        return vi

    def intern_label(self, label: Label) -> int:
        """The slot for ``label``, appending a fresh one when unseen."""
        li = self._lint_of.get(label)
        if li is None:
            li = len(self.label_of)
            self.label_of.append(label)
            self._lint_of[label] = li
        return li

    @property
    def entries(self) -> int:
        """Total interned slots (vertices + labels), tombstones included."""
        return len(self.vertex_of) + len(self.label_of)

    def nbytes(self) -> int:
        """Approximate resident bytes of the table itself.

        The interned key objects are shared with the graph and not
        charged here.
        """
        return (
            sys.getsizeof(self.vertex_of)
            + sys.getsizeof(self.label_of)
            + sys.getsizeof(self._vint_of)
            + sys.getsizeof(self._lint_of)
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<LabelTable vertices={len(self.vertex_of)} "
            f"labels={len(self.label_of)}>"
        )


def _row_find(row: array, li: int) -> Tuple[int, int]:
    """Locate label group ``li`` in a CSR row: ``(body_offset, count)``.

    ``count`` is 0 when the group is absent; ``body_offset`` is then the
    offset the group's neighbors *would* occupy.
    """
    k = row[0]
    off = 1 + 2 * k
    for gi in range(k):
        gl = row[1 + 2 * gi]
        gc = row[2 + 2 * gi]
        if gl == li:
            return off, gc
        if gl > li:
            return off, 0
        off += gc
    return off, 0


class CompactGraphIndex(GraphIndex):
    """A :class:`GraphIndex` over interned ids and flat CSR buffers.

    Same graph/version contract, same maintainable-index protocol, and
    decoded answers identical to the dict implementation — built with
    :meth:`build` or selected process-wide via
    :func:`repro.index.graph_index.set_index_backend`.
    """

    __slots__ = (
        "table",
        "_lab",
        "_deg",
        "_rows",
        "_inv",
        "_pair_edges",
        "_lpair_set",
        "_memo_inv",
        "_memo_pairs",
        "_memo_hist",
        "_memo_lpairs",
        "_memo_nwl",
        "_memo_deg",
        "_memo_sig",
        "_memo_segset",
    )

    def __init__(self, graph: LabeledGraph) -> None:  # noqa: C901
        self.graph = graph
        self.version = graph.mutation_version()

        vertices = graph.vertices()  # canonical repr order
        table = LabelTable(vertices, graph.label_alphabet())
        self.table = table
        vint_of = table._vint_of
        labels_map = graph.labels()
        lint_of = table._lint_of

        lab = array("i", (lint_of[labels_map[v]] for v in vertices))
        self._lab = lab

        # Inverted lists: ascending vint == canonical order at build time.
        inv: Dict[int, array] = {}
        for vi in range(len(vertices)):
            li = lab[vi]
            arr = inv.get(li)
            if arr is None:
                inv[li] = array("i", (vi,))
            else:
                arr.append(vi)
        self._inv = inv

        deg = array("i", bytes(4 * len(vertices)))
        rows: List[Optional[array]] = []
        for vi, vertex in enumerate(vertices):
            nbrs = sorted(vint_of[w] for w in graph.neighbors(vertex))
            deg[vi] = len(nbrs)
            if not nbrs:
                rows.append(array("i", (0,)))
                continue
            buckets: Dict[int, List[int]] = {}
            for w in nbrs:
                buckets.setdefault(lab[w], []).append(w)
            header: List[int] = [len(buckets)]
            body: List[int] = []
            for gl in sorted(buckets):
                members = buckets[gl]
                header.append(gl)
                header.append(len(members))
                body.extend(members)
            rows.append(array("i", header + body))
        self._deg = deg
        self._rows = rows

        # Label-pair edge lists: graph.edges() is already in canonical
        # (repr-of-normalized-edge) order, grouped here per label pair.
        pair_edges: Dict[Tuple[int, int], array] = {}
        lpair_set: Set[Tuple[int, int]] = set()
        for u, v in graph.edges():
            lu = lab[vint_of[u]]
            lv = lab[vint_of[v]]
            lpair_set.add((lu, lv))
            lpair_set.add((lv, lu))
            key = self._pair_key(lu, lv)
            arr = pair_edges.get(key)
            if arr is None:
                arr = array("i")
                pair_edges[key] = arr
            arr.append(vint_of[u])
            arr.append(vint_of[v])
        self._pair_edges = pair_edges
        self._lpair_set = lpair_set
        self._reset_memos()

    # ------------------------------------------------------------------
    # shared helpers
    # ------------------------------------------------------------------
    def _reset_memos(self) -> None:
        # Decoded-object caches (lazy, rebuilt after any patch): decoding
        # translates vints back to vertex objects, and repeated decoded
        # queries (sharded evaluation, incremental extension) should not
        # pay that per call.
        self._memo_inv: Dict[int, Tuple[Vertex, ...]] = {}
        self._memo_pairs: Dict[Tuple[int, int], Tuple[Edge, ...]] = {}
        self._memo_hist: Optional[Dict[Label, int]] = None
        self._memo_lpairs: Optional[FrozenSet[Tuple[Label, Label]]] = None
        self._memo_nwl: Dict[Tuple[int, int], Tuple[Vertex, ...]] = {}
        self._memo_deg: Optional[Dict[Vertex, int]] = None
        self._memo_sig: Optional[Dict[Vertex, Dict[Label, int]]] = None
        self._memo_segset: Dict[int, FrozenSet[int]] = {}

    def _pair_key(self, la: int, lb: int) -> Tuple[int, int]:
        """Canonical (repr-ordered by decoded label) form of a lint pair."""
        label_of = self.table.label_of
        if repr(label_of[la]) <= repr(label_of[lb]):
            return (la, lb)
        return (lb, la)

    def _live_vint(self, vertex: Vertex) -> int:
        """The vint of a *present* vertex (KeyError for unknown/retired)."""
        vi = self.table._vint_of[vertex]
        if self._lab[vi] < 0:
            raise KeyError(vertex)
        return vi

    def _bisect_inv(self, arr: array, rv: str) -> int:
        """Leftmost canonical position for repr ``rv`` in a vint array."""
        dec = self.table.vertex_of
        lo, hi = 0, len(arr)
        while lo < hi:
            mid = (lo + hi) // 2
            if repr(dec[arr[mid]]) < rv:
                lo = mid + 1
            else:
                hi = mid
        return lo

    def _segment(self, vi: int, li: int) -> Tuple[array, int, int]:
        """The (row, start, stop) slice of ``vi``'s neighbors with label ``li``."""
        row = self._rows[vi]
        if row is None:
            return _EMPTY_ROW, 0, 0
        off, cnt = _row_find(row, li)
        return row, off, off + cnt

    def _segment_len(self, vi: int, li: int) -> int:
        row = self._rows[vi]
        if row is None:
            return 0
        return _row_find(row, li)[1]

    def _segment_set(self, vi: int, li: int) -> FrozenSet[int]:
        """Memoized frozenset of ``vi``'s neighbor vints with label ``li``.

        The matching engines probe the same (vertex, label) adjacency
        sets across thousands of expansions per mining session; building
        each set once per patch generation amortizes that to nothing.
        Keys pack as ``vi * num_interned_labels + li`` (both ids are
        dense and stable between patches).
        """
        key = vi * len(self.table.label_of) + li
        cached = self._memo_segset.get(key)
        if cached is None:
            row, start, stop = self._segment(vi, li)
            cached = frozenset(row[start:stop])
            self._memo_segset[key] = cached
        return cached

    # ------------------------------------------------------------------
    # factory / freshness
    # ------------------------------------------------------------------
    def rebuilt(self) -> "CompactGraphIndex":
        """A from-scratch compact index (fresh table, no tombstones)."""
        return CompactGraphIndex(self.graph)

    # ------------------------------------------------------------------
    # delta maintenance: canonical splices into the flat buffers
    # ------------------------------------------------------------------
    def _apply_vertex_added(self, vertex: Vertex, label: Label) -> None:
        table = self.table
        vi = table._vint_of.get(vertex)
        if vi is None:
            vi = table.intern_vertex(vertex)
            self._lab.append(-1)
            self._deg.append(0)
            self._rows.append(array("i", (0,)))
        li = table.intern_label(label)
        self._lab[vi] = li
        self._deg[vi] = 0
        self._rows[vi] = array("i", (0,))
        arr = self._inv.get(li)
        if arr is None:
            self._inv[li] = array("i", (vi,))
        else:
            arr.insert(self._bisect_inv(arr, repr(vertex)), vi)
        self._reset_memos()

    def _apply_edge_added(self, u: Vertex, v: Vertex, lu: Label, lv: Label) -> None:
        table = self.table
        ui = self._live_vint(u)
        wi = self._live_vint(v)
        li_u = table.intern_label(lu)
        li_v = table.intern_label(lv)
        self._lpair_set.add((li_u, li_v))
        self._lpair_set.add((li_v, li_u))
        edge = normalize_edge(u, v)
        key = self._pair_key(li_u, li_v)
        arr = self._pair_edges.get(key)
        if arr is None:
            arr = array("i")
            self._pair_edges[key] = arr
        pos = self._bisect_pairs(arr, repr(edge))
        arr[2 * pos : 2 * pos] = array(
            "i", (table._vint_of[edge[0]], table._vint_of[edge[1]])
        )
        self._row_insert(ui, li_v, wi, v)
        self._row_insert(wi, li_u, ui, u)
        self._deg[ui] += 1
        self._deg[wi] += 1
        self._reset_memos()

    def _apply_edge_removed(self, u: Vertex, v: Vertex, lu: Label, lv: Label) -> None:
        table = self.table
        ui = self._live_vint(u)
        wi = self._live_vint(v)
        li_u = table._lint_of[lu]
        li_v = table._lint_of[lv]
        edge = normalize_edge(u, v)
        key = self._pair_key(li_u, li_v)
        arr = self._pair_edges[key]
        pos = self._bisect_pairs(arr, repr(edge))
        npairs = len(arr) // 2
        dec = table.vertex_of
        while pos < npairs and (dec[arr[2 * pos]], dec[arr[2 * pos + 1]]) != edge:
            pos += 1  # repr ties broken linearly, as in the dict index
        if pos == npairs:
            raise KeyError(edge)
        del arr[2 * pos : 2 * pos + 2]
        if not arr:
            # A rebuild never materializes empty entries.
            del self._pair_edges[key]
            self._lpair_set.discard((li_u, li_v))
            self._lpair_set.discard((li_v, li_u))
        self._row_remove(ui, li_v, wi, v)
        self._row_remove(wi, li_u, ui, u)
        self._deg[ui] -= 1
        self._deg[wi] -= 1
        self._reset_memos()

    def _apply_vertex_removed(self, vertex: Vertex, label: Label) -> None:
        vi = self._live_vint(vertex)
        if self._deg[vi] != 0:
            raise ValueError(
                f"VertexRemoved({vertex!r}) patched while the vertex still has "
                f"{self._deg[vi]} indexed edges; the publisher must emit "
                "the incident EdgeRemoved deltas first"
            )
        li = self.table._lint_of[label]
        arr = self._inv[li]
        pos = self._bisect_inv(arr, repr(vertex))
        while pos < len(arr) and arr[pos] != vi:
            pos += 1
        if pos == len(arr):
            raise KeyError(vertex)
        del arr[pos]
        if not arr:
            del self._inv[li]
        # Tombstone: the table keeps the slot, the label array retires it.
        self._lab[vi] = -1
        self._rows[vi] = array("i", (0,))
        self._reset_memos()

    def _bisect_pairs(self, arr: array, re: str) -> int:
        """Leftmost canonical position for edge-repr ``re`` (pair units)."""
        dec = self.table.vertex_of
        lo, hi = 0, len(arr) // 2
        while lo < hi:
            mid = (lo + hi) // 2
            if repr((dec[arr[2 * mid]], dec[arr[2 * mid + 1]])) < re:
                lo = mid + 1
            else:
                hi = mid
        return lo

    def _row_insert(self, vi: int, li: int, wi: int, w: Vertex) -> None:
        """Splice neighbor ``wi`` (label ``li``) into ``vi``'s CSR row."""
        row = self._rows[vi]
        k = row[0]
        off = 1 + 2 * k
        gi = k
        found = False
        for g in range(k):
            gl = row[1 + 2 * g]
            if gl == li:
                gi, found = g, True
                break
            if gl > li:
                gi = g
                break
            off += row[2 + 2 * g]
        if not found:
            # New directory group: header grows by one (lint, count) pair,
            # shifting the body right by two slots.
            row[1 + 2 * gi : 1 + 2 * gi] = array("i", (li, 0))
            row[0] = k + 1
            off += 2
        # Canonical position within the (repr-sorted) group.
        dec = self.table.vertex_of
        cnt = row[2 + 2 * gi]
        rw = repr(w)
        lo, hi = 0, cnt
        while lo < hi:
            mid = (lo + hi) // 2
            if repr(dec[row[off + mid]]) < rw:
                lo = mid + 1
            else:
                hi = mid
        row.insert(off + lo, wi)
        row[2 + 2 * gi] = cnt + 1

    def _row_remove(self, vi: int, li: int, wi: int, w: Vertex) -> None:
        """Splice neighbor ``wi`` (label ``li``) out of ``vi``'s CSR row."""
        row = self._rows[vi]
        k = row[0]
        off = 1 + 2 * k
        gi = -1
        for g in range(k):
            gl = row[1 + 2 * g]
            if gl == li:
                gi = g
                break
            off += row[2 + 2 * g]
        if gi < 0:
            raise KeyError(w)
        cnt = row[2 + 2 * gi]
        dec = self.table.vertex_of
        rw = repr(w)
        lo, hi = 0, cnt
        while lo < hi:
            mid = (lo + hi) // 2
            if repr(dec[row[off + mid]]) < rw:
                lo = mid + 1
            else:
                hi = mid
        while lo < cnt and row[off + lo] != wi:
            lo += 1
        if lo == cnt:
            raise KeyError(w)
        del row[off + lo]
        if cnt == 1:
            # The group emptied: drop its directory entry, as a rebuild
            # would never have created it.
            del row[1 + 2 * gi : 3 + 2 * gi]
            row[0] = k - 1
        else:
            row[2 + 2 * gi] = cnt - 1

    # ------------------------------------------------------------------
    # decoded query API (identical objects/order to the dict index)
    # ------------------------------------------------------------------
    def vertices_with_label(self, label: Label) -> Tuple[Vertex, ...]:
        li = self.table._lint_of.get(label)
        if li is None:
            return _EMPTY
        cached = self._memo_inv.get(li)
        if cached is None:
            arr = self._inv.get(li)
            if not arr:
                return _EMPTY
            dec = self.table.vertex_of
            cached = tuple(dec[vi] for vi in arr)
            self._memo_inv[li] = cached
        return cached

    def label_histogram(self) -> Dict[Label, int]:
        hist = self._memo_hist
        if hist is None:
            label_of = self.table.label_of
            hist = {label_of[li]: len(arr) for li, arr in self._inv.items()}
            self._memo_hist = hist
        return hist

    def label_frequency(self, label: Label) -> int:
        li = self.table._lint_of.get(label)
        if li is None:
            return 0
        arr = self._inv.get(li)
        return len(arr) if arr is not None else 0

    def adjacent_label_pairs(self) -> FrozenSet[Tuple[Label, Label]]:
        pairs = self._memo_lpairs
        if pairs is None:
            label_of = self.table.label_of
            pairs = frozenset(
                (label_of[a], label_of[b]) for a, b in self._lpair_set
            )
            self._memo_lpairs = pairs
        return pairs

    def has_label_pair(self, lu: Label, lv: Label) -> bool:
        lint_of = self.table._lint_of
        la = lint_of.get(lu)
        lb = lint_of.get(lv)
        if la is None or lb is None:
            return False
        return (la, lb) in self._lpair_set

    def edges_with_labels(self, lu: Label, lv: Label) -> Tuple[Edge, ...]:
        lint_of = self.table._lint_of
        la = lint_of.get(lu)
        lb = lint_of.get(lv)
        if la is None or lb is None:
            return _EMPTY
        key = self._pair_key(la, lb)
        cached = self._memo_pairs.get(key)
        if cached is None:
            arr = self._pair_edges.get(key)
            if arr is None:
                return _EMPTY
            dec = self.table.vertex_of
            cached = tuple(
                (dec[arr[i]], dec[arr[i + 1]]) for i in range(0, len(arr), 2)
            )
            self._memo_pairs[key] = cached
        return cached

    def distinct_edge_label_pairs(self) -> List[Tuple[Label, Label]]:
        label_of = self.table.label_of
        return sorted(
            ((label_of[a], label_of[b]) for a, b in self._pair_edges),
            key=repr,
        )

    def degree_of(self, vertex: Vertex) -> int:
        return self._deg[self._live_vint(vertex)]

    def degree_map(self) -> Dict[Vertex, int]:
        dmap = self._memo_deg
        if dmap is None:
            dec = self.table.vertex_of
            lab = self._lab
            deg = self._deg
            dmap = {
                dec[vi]: deg[vi] for vi in range(len(lab)) if lab[vi] >= 0
            }
            self._memo_deg = dmap
        return dmap

    def signature_map(self) -> Dict[Vertex, Dict[Label, int]]:
        smap = self._memo_sig
        if smap is None:
            dec = self.table.vertex_of
            lab = self._lab
            smap = {
                dec[vi]: self._decode_signature(vi)
                for vi in range(len(lab))
                if lab[vi] >= 0
            }
            self._memo_sig = smap
        return smap

    def _decode_signature(self, vi: int) -> Dict[Label, int]:
        row = self._rows[vi]
        label_of = self.table.label_of
        k = row[0]
        return {
            label_of[row[1 + 2 * g]]: row[2 + 2 * g] for g in range(k)
        }

    def neighbors_with_label(self, vertex: Vertex, label: Label) -> Tuple[Vertex, ...]:
        vi = self._live_vint(vertex)
        li = self.table._lint_of.get(label)
        if li is None:
            return _EMPTY
        cached = self._memo_nwl.get((vi, li))
        if cached is None:
            row, start, stop = self._segment(vi, li)
            if start == stop:
                return _EMPTY
            dec = self.table.vertex_of
            cached = tuple(dec[row[i]] for i in range(start, stop))
            self._memo_nwl[(vi, li)] = cached
        return cached

    def signature_of(self, vertex: Vertex) -> Dict[Label, int]:
        return self._decode_signature(self._live_vint(vertex))

    def dominates(self, vertex: Vertex, requirements: Dict[Label, int]) -> bool:
        vi = self._live_vint(vertex)
        lint_of = self.table._lint_of
        for label, count in requirements.items():
            li = lint_of.get(label)
            if li is None or self._segment_len(vi, li) < count:
                return False
        return True

    # ------------------------------------------------------------------
    # footprint accounting
    # ------------------------------------------------------------------
    def nbytes(self) -> int:
        """Approximate resident bytes of the index buffers.

        Counts the intern table, the flat arrays, and container overhead;
        excludes the vertex/label objects themselves (shared with the
        graph) and the transient decode memos.
        """
        total = self.table.nbytes()
        total += sys.getsizeof(self._lab) + sys.getsizeof(self._deg)
        total += sys.getsizeof(self._rows)
        for row in self._rows:
            if row is not None:
                total += sys.getsizeof(row)
        total += sys.getsizeof(self._inv)
        for arr in self._inv.values():
            total += sys.getsizeof(arr)
        total += sys.getsizeof(self._pair_edges)
        for arr in self._pair_edges.values():
            total += sys.getsizeof(arr)
        total += sys.getsizeof(self._lpair_set)
        return total

    def intern_entries(self) -> int:
        """Interned slots in the label table (tombstones included)."""
        return self.table.entries

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        live = sum(1 for li in self._lab if li >= 0)
        return (
            f"<CompactGraphIndex |V|={live} labels={len(self._inv)} "
            f"pairs={len(self._pair_edges)} interned={self.table.entries} "
            f"v{self.version}>"
        )


# ----------------------------------------------------------------------
# projected footprints (the pager's deterministic cost model)
# ----------------------------------------------------------------------
#: Per-entry byte estimates for each backend, calibrated against
#: ``nbytes()`` on CPython 3.11/64-bit synthetic graphs (see
#: ``tests/test_compact_index.py::test_projected_footprint_tracks_nbytes``).
#: (per-vertex, per-edge, per-label) coefficients.
_FOOTPRINT_COEFFICIENTS = {
    "dict": (700, 90, 3000),
    "compact": (180, 14, 900),
}


def projected_index_nbytes(
    num_vertices: int, num_edges: int, num_labels: int, backend: str
) -> int:
    """Deterministic footprint estimate for an index over a graph this size.

    Used by :class:`repro.partition.workers.ShardPager` as its resident-
    weight cost model: paging decisions must be cheap and reproducible, so
    they use this projection rather than measuring a (possibly not yet
    built) per-view index.
    """
    per_vertex, per_edge, per_label = _FOOTPRINT_COEFFICIENTS[backend]
    return (
        256  # fixed container overhead
        + per_vertex * num_vertices
        + per_edge * num_edges
        + per_label * num_labels
    )
