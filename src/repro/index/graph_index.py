"""Precomputed acceleration index over a :class:`LabeledGraph`.

Every hot path of the library — subgraph matching, anchored searches,
occurrence enumeration, candidate generation in the miner — used to re-scan
the data graph per query: per-call set copies of the label inverted lists,
per-call ``repr``-sorts of candidate vertices, per-call neighbor scans for
label-filtered adjacency.  A :class:`GraphIndex` materializes all of that
once per graph:

* **inverted lists** — ``label -> tuple of vertices`` carrying the label,
  pre-sorted in the library's canonical (``repr``) order;
* **label-pair adjacency** — ``(label_u, label_v) -> tuple of data edges``
  whose endpoints carry those labels (the graphs are vertex-labeled with a
  single implicit edge label, so the paper's (src-label, edge-label,
  dst-label) triple collapses to the unordered vertex-label pair);
* **per-vertex signatures** — degree plus the multiset of neighbor labels,
  with neighbor lists per label pre-sorted, for candidate filtering that
  rejects hopeless vertices before any backtracking.

Each :class:`LabeledGraph` carries a version counter bumped on every
mutation; :func:`get_index` caches the index on the graph itself and
transparently rebuilds after mutations, so "build once per mining session,
reuse across all candidates" is automatic.  Indexes never drift from their
graph: they either match its version exactly or are replaced.  Under an
update stream — insertions *and* deletions — a full rebuild is avoidable:
:meth:`apply_delta` patches the index in O(delta) per update (canonical
splice-in for additions, the inverse splice-out for removals), and
:class:`repro.index.delta.IndexMaintainer` drives that from the graph's
mutation-observer hook.

All orders are the same canonical ``repr`` orders used by the brute-force
paths, which is what makes indexed and unindexed enumeration byte-identical
(asserted by ``tests/test_index_equivalence.py``).
"""

from __future__ import annotations

import os
import sys
from bisect import bisect_left
from typing import Dict, FrozenSet, List, Optional, Set, Tuple, Union

from ..graph.labeled_graph import Edge, Label, LabeledGraph, Vertex, normalize_edge
from ..obs import metrics as _metrics
from .maintainable import MaintainableIndex

_EMPTY: Tuple[Vertex, ...] = ()


def _insert_canonical(members: Tuple, item) -> Tuple:
    """Insert ``item`` into a repr-sorted tuple, preserving canonical order."""
    position = bisect_left(members, repr(item), key=repr)
    return members[:position] + (item,) + members[position:]


def _remove_canonical(members: Tuple, item) -> Tuple:
    """Splice ``item`` out of a repr-sorted tuple, preserving canonical order."""
    position = bisect_left(members, repr(item), key=repr)
    while position < len(members) and members[position] != item:
        # repr ties (distinct items with equal repr) are broken linearly.
        position += 1
    if position == len(members):
        raise KeyError(item)
    return members[:position] + members[position + 1 :]


def _label_pair_key(lu: Label, lv: Label) -> Tuple[Label, Label]:
    """Canonical (repr-sorted) form of an unordered label pair."""
    return (lu, lv) if repr(lu) <= repr(lv) else (lv, lu)


class GraphIndex(MaintainableIndex):
    """An acceleration structure for one labeled graph snapshot.

    Build with :meth:`build` (or the cached :func:`get_index`).  The index
    never mutates the graph; :meth:`is_current` reports whether the graph
    has changed since the snapshot was taken.  A stale index can be
    brought current either by rebuilding or by :meth:`apply_delta`
    patching one typed delta — insertion or removal — in O(delta)
    (the :class:`~repro.index.maintainable.MaintainableIndex` protocol,
    shared with the partition layer's ``ShardedIndex``).
    """

    __slots__ = (
        "graph",
        "version",
        "_label_list",
        "_histogram",
        "_neighbors_by_label",
        "_signatures",
        "_degrees",
        "_label_pairs",
        "_edges_by_pair",
    )

    def __init__(self, graph: LabeledGraph) -> None:
        self.graph = graph
        self.version = graph.mutation_version()

        label_list: Dict[Label, Tuple[Vertex, ...]] = {}
        for label in graph.label_alphabet():
            label_list[label] = tuple(
                sorted(graph.vertices_with_label(label), key=repr)
            )
        self._label_list = label_list
        self._histogram = {label: len(vs) for label, vs in label_list.items()}

        neighbors_by_label: Dict[Vertex, Dict[Label, Tuple[Vertex, ...]]] = {}
        signatures: Dict[Vertex, Dict[Label, int]] = {}
        degrees: Dict[Vertex, int] = {}
        labels = graph.labels()
        for vertex in graph.vertices():
            buckets: Dict[Label, List[Vertex]] = {}
            for neighbor in graph.neighbors(vertex):
                buckets.setdefault(labels[neighbor], []).append(neighbor)
            neighbors_by_label[vertex] = {
                label: tuple(sorted(members, key=repr))
                for label, members in buckets.items()
            }
            signatures[vertex] = {
                label: len(members) for label, members in buckets.items()
            }
            degrees[vertex] = graph.degree(vertex)
        self._neighbors_by_label = neighbors_by_label
        self._signatures = signatures
        self._degrees = degrees

        label_pairs: Set[Tuple[Label, Label]] = set()
        edges_by_pair: Dict[Tuple[Label, Label], List[Edge]] = {}
        for u, v in graph.edges():
            lu, lv = labels[u], labels[v]
            label_pairs.add((lu, lv))
            label_pairs.add((lv, lu))
            edges_by_pair.setdefault(_label_pair_key(lu, lv), []).append(
                normalize_edge(u, v)
            )
        self._label_pairs = frozenset(label_pairs)
        self._edges_by_pair = {
            pair: tuple(members) for pair, members in edges_by_pair.items()
        }

    # ------------------------------------------------------------------
    # factory / freshness
    # ------------------------------------------------------------------
    @classmethod
    def build(cls, graph: LabeledGraph) -> "GraphIndex":
        """Build a fresh index for ``graph`` (no caching)."""
        return cls(graph)

    def rebuilt(self) -> "GraphIndex":
        """A from-scratch index for the graph's current state."""
        return GraphIndex(self.graph)

    # ------------------------------------------------------------------
    # delta maintenance (see repro.index.delta)
    # ------------------------------------------------------------------
    def apply_delta(self, delta) -> bool:
        """Patch this index in place for one typed graph delta.

        Insertions (:class:`~repro.index.delta.VertexAdded`,
        :class:`~repro.index.delta.EdgeAdded`) are absorbed in O(delta):
        a vertex splices into its label's inverted list, an edge splices
        into its label-pair edge list and both endpoints' neighbor-label
        buckets — all at the canonical (``repr``-sorted) position, so the
        patched index is structurally identical to a rebuilt one.

        Removals (:class:`~repro.index.delta.EdgeRemoved`,
        :class:`~repro.index.delta.VertexRemoved`) are the exact inverse
        splices: an edge leaves its label-pair edge list and both
        endpoints' neighbor-label buckets (entries that empty are deleted
        outright, exactly as a rebuild would never create them); a vertex
        leaves its label's inverted list and drops its signature state.
        A ``VertexRemoved`` delta is only sound once the vertex is
        isolated — the publisher emits the incident ``EdgeRemoved`` deltas
        first, so a contiguous replay is always in that order.

        The index version advances to the delta's version; callers must
        apply deltas contiguously
        (:class:`~repro.index.delta.IndexMaintainer` enforces this).

        Returns ``False`` for delta kinds this index cannot patch — the
        caller falls back to :meth:`build`.
        """
        from .delta import EdgeAdded, EdgeRemoved, VertexAdded, VertexRemoved

        if isinstance(delta, VertexAdded):
            self._apply_vertex_added(delta.vertex, delta.label)
        elif isinstance(delta, EdgeAdded):
            self._apply_edge_added(delta.u, delta.v, delta.label_u, delta.label_v)
        elif isinstance(delta, EdgeRemoved):
            self._apply_edge_removed(delta.u, delta.v, delta.label_u, delta.label_v)
        elif isinstance(delta, VertexRemoved):
            self._apply_vertex_removed(delta.vertex, delta.label)
        else:
            return False
        self.version = delta.version
        return True

    def _apply_vertex_added(self, vertex: Vertex, label: Label) -> None:
        self._label_list[label] = _insert_canonical(
            self._label_list.get(label, _EMPTY), vertex
        )
        self._histogram[label] = self._histogram.get(label, 0) + 1
        self._neighbors_by_label[vertex] = {}
        self._signatures[vertex] = {}
        self._degrees[vertex] = 0

    def _apply_edge_added(self, u: Vertex, v: Vertex, lu: Label, lv: Label) -> None:
        if (lu, lv) not in self._label_pairs:
            self._label_pairs = self._label_pairs | {(lu, lv), (lv, lu)}
        pair = _label_pair_key(lu, lv)
        self._edges_by_pair[pair] = _insert_canonical(
            self._edges_by_pair.get(pair, _EMPTY), normalize_edge(u, v)
        )
        buckets_u = self._neighbors_by_label[u]
        buckets_u[lv] = _insert_canonical(buckets_u.get(lv, _EMPTY), v)
        buckets_v = self._neighbors_by_label[v]
        buckets_v[lu] = _insert_canonical(buckets_v.get(lu, _EMPTY), u)
        signature_u = self._signatures[u]
        signature_u[lv] = signature_u.get(lv, 0) + 1
        signature_v = self._signatures[v]
        signature_v[lu] = signature_v.get(lu, 0) + 1
        self._degrees[u] += 1
        self._degrees[v] += 1

    def _apply_edge_removed(self, u: Vertex, v: Vertex, lu: Label, lv: Label) -> None:
        pair = _label_pair_key(lu, lv)
        remaining = _remove_canonical(self._edges_by_pair[pair], normalize_edge(u, v))
        if remaining:
            self._edges_by_pair[pair] = remaining
        else:
            # A rebuild never materializes empty entries: the pair leaves
            # the edge map and (both orders of) the adjacency set.
            del self._edges_by_pair[pair]
            self._label_pairs = self._label_pairs - {(lu, lv), (lv, lu)}
        for vertex, other, other_label in ((u, v, lv), (v, u, lu)):
            buckets = self._neighbors_by_label[vertex]
            shrunk = _remove_canonical(buckets[other_label], other)
            signature = self._signatures[vertex]
            if shrunk:
                buckets[other_label] = shrunk
                signature[other_label] -= 1
            else:
                del buckets[other_label]
                del signature[other_label]
            self._degrees[vertex] -= 1

    def _apply_vertex_removed(self, vertex: Vertex, label: Label) -> None:
        if self._degrees[vertex] != 0:
            raise ValueError(
                f"VertexRemoved({vertex!r}) patched while the vertex still has "
                f"{self._degrees[vertex]} indexed edges; the publisher must emit "
                "the incident EdgeRemoved deltas first"
            )
        remaining = _remove_canonical(self._label_list[label], vertex)
        if remaining:
            self._label_list[label] = remaining
            self._histogram[label] -= 1
        else:
            del self._label_list[label]
            del self._histogram[label]
        del self._neighbors_by_label[vertex]
        del self._signatures[vertex]
        del self._degrees[vertex]

    # ------------------------------------------------------------------
    # inverted lists
    # ------------------------------------------------------------------
    def vertices_with_label(self, label: Label) -> Tuple[Vertex, ...]:
        """Vertices carrying ``label``, pre-sorted in canonical order."""
        return self._label_list.get(label, _EMPTY)

    def label_histogram(self) -> Dict[Label, int]:
        """Vertex count per label (do not mutate the returned dict)."""
        return self._histogram

    def label_frequency(self, label: Label) -> int:
        return self._histogram.get(label, 0)

    # ------------------------------------------------------------------
    # label-pair adjacency
    # ------------------------------------------------------------------
    def adjacent_label_pairs(self) -> FrozenSet[Tuple[Label, Label]]:
        """All label pairs joined by a data edge (both orders present)."""
        return self._label_pairs

    def has_label_pair(self, lu: Label, lv: Label) -> bool:
        return (lu, lv) in self._label_pairs

    def edges_with_labels(self, lu: Label, lv: Label) -> Tuple[Edge, ...]:
        """Data edges whose endpoint labels are the unordered pair (lu, lv)."""
        return self._edges_by_pair.get(_label_pair_key(lu, lv), _EMPTY)

    def distinct_edge_label_pairs(self) -> List[Tuple[Label, Label]]:
        """Canonical unordered label pairs realized by data edges, sorted."""
        return sorted(self._edges_by_pair, key=repr)

    # ------------------------------------------------------------------
    # per-vertex signatures
    # ------------------------------------------------------------------
    def degree_of(self, vertex: Vertex) -> int:
        return self._degrees[vertex]

    def degree_map(self) -> Dict[Vertex, int]:
        """Vertex -> degree for the whole graph (do not mutate)."""
        return self._degrees

    def signature_map(self) -> Dict[Vertex, Dict[Label, int]]:
        """Vertex -> neighbor-label multiset for the whole graph (do not mutate)."""
        return self._signatures

    def neighbors_with_label(self, vertex: Vertex, label: Label) -> Tuple[Vertex, ...]:
        """Neighbors of ``vertex`` carrying ``label``, pre-sorted."""
        return self._neighbors_by_label[vertex].get(label, _EMPTY)

    def signature_of(self, vertex: Vertex) -> Dict[Label, int]:
        """Neighbor-label multiset of ``vertex`` (do not mutate)."""
        return self._signatures[vertex]

    def nbytes(self) -> int:
        """Approximate resident bytes of the index structures.

        Counts container overhead of the inverted lists, signature maps,
        and edge lists; excludes the vertex/label objects themselves
        (shared with the graph).  The compact backend overrides this with
        its buffer sizes; both feed the ``repro_index_bytes`` gauge and
        the footprint benchmarks.
        """
        total = sys.getsizeof(self._label_list)
        for members in self._label_list.values():
            total += sys.getsizeof(members)
        total += sys.getsizeof(self._histogram)
        total += sys.getsizeof(self._neighbors_by_label)
        for buckets in self._neighbors_by_label.values():
            total += sys.getsizeof(buckets)
            for members in buckets.values():
                total += sys.getsizeof(members)
        total += sys.getsizeof(self._signatures)
        for signature in self._signatures.values():
            total += sys.getsizeof(signature)
            total += 28 * len(signature)  # boxed per-label counts
        total += sys.getsizeof(self._degrees) + 28 * len(self._degrees)
        total += sys.getsizeof(self._label_pairs)
        total += sys.getsizeof(self._edges_by_pair)
        for members in self._edges_by_pair.values():
            total += sys.getsizeof(members) + 64 * len(members)  # edge tuples
        return total

    def intern_entries(self) -> int:
        """Intern-table size (0: the dict backend stores objects directly).

        The compact backend overrides this with its
        :class:`~repro.index.compact.LabelTable` entry count (tombstones
        included); both feed the ``repro_index_intern_entries`` gauge.
        """
        return 0

    def dominates(self, vertex: Vertex, requirements: Dict[Label, int]) -> bool:
        """True when ``vertex``'s neighbor-label counts cover ``requirements``.

        A pattern node whose neighbors carry labels with multiplicities
        ``requirements`` can only be hosted by data vertices passing this
        check: pattern neighbors of one label must map injectively into
        data neighbors of that label.
        """
        signature = self._signatures[vertex]
        for label, count in requirements.items():
            if signature.get(label, 0) < count:
                return False
        return True

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<GraphIndex |V|={len(self._degrees)} "
            f"labels={len(self._label_list)} pairs={len(self._edges_by_pair)} "
            f"v{self.version}>"
        )


#: What callers may pass wherever an index is accepted:
#: ``None``  -> use the graph's cached index (build it on first use);
#: ``False`` -> brute force, no index (the reference path);
#: a :class:`GraphIndex` -> use exactly this index.
IndexArg = Union[None, bool, GraphIndex]

#: Process-wide index backend: ``"compact"`` (interned ids + CSR buffers,
#: the default) or ``"dict"`` (the per-entry reference implementation).
#: Both produce byte-identical query answers; the env var seeds the
#: default so CI smokes and benchmarks can pin a backend per process.
_INDEX_BACKENDS = ("compact", "dict")
_index_backend = os.environ.get("REPRO_INDEX_BACKEND", "compact")
if _index_backend not in _INDEX_BACKENDS:  # pragma: no cover - env guard
    _index_backend = "compact"


def index_backend() -> str:
    """The active index backend name (``"compact"`` or ``"dict"``)."""
    return _index_backend


def set_index_backend(name: str) -> str:
    """Select the backend :func:`get_index` builds; returns the previous one.

    Already-cached indexes are not evicted — they remain valid (both
    backends answer identically) until the graph mutates.
    """
    global _index_backend
    if name not in _INDEX_BACKENDS:
        raise ValueError(
            f"unknown index backend {name!r}; expected one of {_INDEX_BACKENDS}"
        )
    previous = _index_backend
    _index_backend = name
    return previous


def _build_index(graph: LabeledGraph) -> GraphIndex:
    if _index_backend == "compact":
        from .compact import CompactGraphIndex

        return CompactGraphIndex(graph)
    return GraphIndex(graph)


def get_index(graph: LabeledGraph) -> GraphIndex:
    """The cached index for ``graph``, (re)building after any mutation.

    Builds with the active backend (:func:`index_backend`) on a cache
    miss and publishes the ``repro_index_bytes`` /
    ``repro_index_intern_entries`` footprint gauges for the fresh build.
    """
    cached = graph.cached_index()
    if isinstance(cached, GraphIndex) and cached.is_current():
        # A backend switch invalidates caches lazily: a cached index of
        # the wrong flavor is rebuilt on next access, not eagerly.
        from .compact import CompactGraphIndex

        want_compact = _index_backend == "compact"
        if isinstance(cached, CompactGraphIndex) == want_compact:
            return cached
    index = _build_index(graph)
    graph.cache_index(index)
    _metrics.gauge("repro_index_bytes").set(index.nbytes())
    _metrics.gauge("repro_index_intern_entries").set(
        getattr(index, "intern_entries", lambda: 0)()
    )
    return index


def resolve_index(graph: LabeledGraph, index: IndexArg) -> Optional[GraphIndex]:
    """Normalize an :data:`IndexArg` into a usable index (or ``None``).

    Returns ``None`` for the brute-force request (``index=False``); a stale
    explicit index is silently replaced by a fresh cached one.
    """
    if index is False:
        return None
    if isinstance(index, GraphIndex):
        if index.graph is graph and index.is_current():
            return index
        return get_index(graph)
    return get_index(graph)
