"""Indexed acceleration layer for data-graph hot paths.

See :mod:`repro.index.graph_index` for the design notes,
:mod:`repro.index.delta` for incremental (delta-patched) maintenance,
:mod:`repro.index.maintainable` for the maintainable-index protocol
shared with the partition layer, and ``docs/architecture.md`` for how
the rest of the library routes through it.
"""

from .delta import (
    INSERTION_DELTAS,
    PATCHABLE_DELTAS,
    EdgeAdded,
    EdgeRemoved,
    GraphDelta,
    IndexMaintainer,
    VertexAdded,
    VertexRemoved,
)
from .graph_index import GraphIndex, IndexArg, get_index, resolve_index
from .maintainable import DeltaMaintainer, MaintainableIndex

__all__ = [
    "GraphIndex",
    "IndexArg",
    "get_index",
    "resolve_index",
    "GraphDelta",
    "VertexAdded",
    "EdgeAdded",
    "EdgeRemoved",
    "VertexRemoved",
    "INSERTION_DELTAS",
    "PATCHABLE_DELTAS",
    "IndexMaintainer",
    "MaintainableIndex",
    "DeltaMaintainer",
]
