"""Indexed acceleration layer for data-graph hot paths.

See :mod:`repro.index.graph_index` for the design notes,
:mod:`repro.index.delta` for incremental (delta-patched) maintenance,
:mod:`repro.index.maintainable` for the maintainable-index protocol
shared with the partition layer, and ``docs/architecture.md`` for how
the rest of the library routes through it.
"""

from .delta import (
    INSERTION_DELTAS,
    PATCHABLE_DELTAS,
    EdgeAdded,
    EdgeRemoved,
    GraphDelta,
    IndexMaintainer,
    VertexAdded,
    VertexRemoved,
)
from .compact import CompactGraphIndex, LabelTable, projected_index_nbytes
from .graph_index import (
    GraphIndex,
    IndexArg,
    get_index,
    index_backend,
    resolve_index,
    set_index_backend,
)
from .maintainable import DeltaMaintainer, MaintainableIndex

__all__ = [
    "GraphIndex",
    "CompactGraphIndex",
    "LabelTable",
    "IndexArg",
    "get_index",
    "resolve_index",
    "index_backend",
    "set_index_backend",
    "projected_index_nbytes",
    "GraphDelta",
    "VertexAdded",
    "EdgeAdded",
    "EdgeRemoved",
    "VertexRemoved",
    "INSERTION_DELTAS",
    "PATCHABLE_DELTAS",
    "IndexMaintainer",
    "MaintainableIndex",
    "DeltaMaintainer",
]
