"""Indexed acceleration layer for data-graph hot paths.

See :mod:`repro.index.graph_index` for the design notes and
``docs/architecture.md`` for how the rest of the library routes through it.
"""

from .graph_index import GraphIndex, IndexArg, get_index, resolve_index

__all__ = ["GraphIndex", "IndexArg", "get_index", "resolve_index"]
