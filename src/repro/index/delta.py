"""Delta-maintained graph indexes (incremental maintenance under updates).

PR 1's :class:`~repro.index.graph_index.GraphIndex` treated every graph
mutation as total invalidation: the version counter moved, so the next
``get_index`` call rebuilt the whole index from scratch.  For a dynamic
data graph receiving a stream of updates that is O(|V| + |E|) work per
update.  This module follows the dynamic query-evaluation direction
(Berkholz et al., arXiv:1702.08764): maintain the materialized structure
*under* the update stream instead of recomputing it — and, as that work
argues, handle deletions symmetrically to insertions, or real update
streams (which mix both) degenerate back to recomputation.

Three pieces cooperate:

* **typed deltas** — :class:`VertexAdded`, :class:`EdgeAdded`,
  :class:`EdgeRemoved`, :class:`VertexRemoved`.  Every structural mutation
  of a :class:`~repro.graph.labeled_graph.LabeledGraph` publishes exactly
  one delta to its subscribed observers (the mutation-observer hook),
  stamped with the post-mutation version, so a contiguous delta run is a
  faithful replay of the version counter;
* **O(delta) patching** — ``GraphIndex.apply_delta`` splices a single
  update into the inverted lists, label-pair edge lists, and
  degree/neighbor-label signatures: insertions splice *in* at the
  canonical (``repr``) position, removals splice *out* (deleting entries
  that empty), so a patched index is structurally identical to one
  rebuilt from scratch either way (pinned by
  ``tests/test_delta_maintenance.py``);
* **:class:`IndexMaintainer`** — subscribes to a graph, buffers its
  deltas, and on :meth:`IndexMaintainer.index` brings the maintained
  index current: patching when the buffered run is contiguous, falling
  back to a full rebuild only for observation gaps (e.g. after
  :meth:`IndexMaintainer.detach`) or bursts larger than the graph itself,
  where a rebuild is the cheaper move.  Oversized bursts coalesce into
  one deferred rebuild: crossing the patch limit drops the buffer and
  later deltas are absorbed without being stored, so an arbitrarily long
  burst costs O(1) maintained state and a single rebuild.

The maintainer re-caches the patched index on the graph itself, so every
hot path that resolves indexes through ``get_index`` transparently sees
the O(delta) maintenance — no call-site changes needed.  ``get_index``'s
own rebuild-on-stale behavior remains the reference path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple, Union

from ..graph.labeled_graph import Label, LabeledGraph, Vertex
from .graph_index import GraphIndex, _label_pair_key, get_index
from .maintainable import DeltaMaintainer


@dataclass(frozen=True)
class GraphDelta:
    """Base class for typed mutation deltas.

    ``version`` is the graph's :meth:`mutation_version` *after* the
    mutation; the publisher bumps the counter by exactly one per delta,
    so versions of a faithful observation run are consecutive.
    """

    version: int


@dataclass(frozen=True)
class VertexAdded(GraphDelta):
    """A new vertex (no incident edges yet) joined the graph."""

    vertex: Vertex
    label: Label


@dataclass(frozen=True)
class _EdgeDelta(GraphDelta):
    """Shared shape of the edge deltas (endpoint labels included)."""

    u: Vertex
    v: Vertex
    label_u: Label
    label_v: Label

    def label_pair(self) -> Tuple[Label, Label]:
        """Canonical unordered label pair of the touched edge's endpoints."""
        return _label_pair_key(self.label_u, self.label_v)


@dataclass(frozen=True)
class EdgeAdded(_EdgeDelta):
    """A new undirected edge joined the graph."""


@dataclass(frozen=True)
class EdgeRemoved(_EdgeDelta):
    """An undirected edge left the graph."""


@dataclass(frozen=True)
class VertexRemoved(GraphDelta):
    """A vertex left the graph (its incident-edge removals were published first)."""

    vertex: Vertex
    label: Label


#: Insertion-shaped delta kinds.  Kept as a named subset because the
#: growing direction still has special structure (supports are monotone
#: under it); the index itself patches the full :data:`PATCHABLE_DELTAS`.
INSERTION_DELTAS = (VertexAdded, EdgeAdded)

#: Delta kinds a GraphIndex can absorb in O(delta).  Removals patch as
#: the exact inverse splices of insertions — ``remove_vertex`` publishes
#: the incident ``EdgeRemoved`` deltas before its ``VertexRemoved``, so a
#: contiguous replay only ever removes isolated vertices from the index.
PATCHABLE_DELTAS = (VertexAdded, EdgeAdded, EdgeRemoved, VertexRemoved)

AnyDelta = Union[VertexAdded, EdgeAdded, EdgeRemoved, VertexRemoved]


class IndexMaintainer(DeltaMaintainer):
    """Keep one graph's :class:`GraphIndex` current by patching, not rebuilding.

    Attach with ``IndexMaintainer(graph)``; the maintainer subscribes to
    the graph's mutation-observer hook and buffers deltas as they are
    published.  :meth:`index` returns an index that is current for the
    graph's present version, obtained by (in preference order):

    1. returning the maintained index untouched when nothing changed;
    2. adopting the graph's cached index when some other caller already
       rebuilt it (interleaved reads through ``get_index`` stay cheap);
    3. **patching** the maintained index in O(delta) when the buffered
       deltas form a contiguous run up to the graph's current version —
       insertions and removals alike;
    4. rebuilding from scratch otherwise — an observation gap (attached
       late, detached in between, a buffer that cannot replay the version
       counter exactly) or a burst that outgrew the patch limit.

    The buffering, burst-coalescing, and contiguity bookkeeping are the
    shared :class:`~repro.index.maintainable.DeltaMaintainer` core (one
    implementation, also driving the sharded maintainer); this class
    adds only what is specific to the flat index: adopting the graph's
    cached index when an interleaved ``get_index`` read already rebuilt
    it, and re-caching each refreshed index on the graph so subsequent
    ``get_index`` calls (matcher, miner, overlap graphs …) reuse it.
    ``patches_applied`` / ``rebuilds`` count how each refresh was served;
    oversized bursts coalesce into one deferred rebuild
    (``deltas_coalesced``, O(1) state past the patch limit).
    """

    patchable_kinds = PATCHABLE_DELTAS

    __slots__ = ()

    def __init__(self, graph: LabeledGraph, patch_limit: Optional[int] = None) -> None:
        super().__init__(graph, get_index(graph), patch_limit)

    def index(self) -> GraphIndex:
        """The maintained index, brought current for the graph's version."""
        return self.refresh()  # type: ignore[return-value]

    def _adopt(self) -> Optional[GraphIndex]:
        # Someone already paid for a fresh index (an interleaved read
        # through get_index); adopt it instead of duplicating the work.
        cached = self.graph.cached_index()
        if isinstance(cached, GraphIndex) and cached.is_current():
            return cached
        return None

    def _store(self, index) -> None:
        self.graph.cache_index(index)
