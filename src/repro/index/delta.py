"""Delta-maintained graph indexes (incremental maintenance under updates).

PR 1's :class:`~repro.index.graph_index.GraphIndex` treated every graph
mutation as total invalidation: the version counter moved, so the next
``get_index`` call rebuilt the whole index from scratch.  For a dynamic
data graph receiving a stream of updates that is O(|V| + |E|) work per
update.  This module follows the dynamic query-evaluation direction
(Berkholz et al., arXiv:1702.08764): maintain the materialized structure
*under* the update stream instead of recomputing it — and, as that work
argues, handle deletions symmetrically to insertions, or real update
streams (which mix both) degenerate back to recomputation.

Three pieces cooperate:

* **typed deltas** — :class:`VertexAdded`, :class:`EdgeAdded`,
  :class:`EdgeRemoved`, :class:`VertexRemoved`.  Every structural mutation
  of a :class:`~repro.graph.labeled_graph.LabeledGraph` publishes exactly
  one delta to its subscribed observers (the mutation-observer hook),
  stamped with the post-mutation version, so a contiguous delta run is a
  faithful replay of the version counter;
* **O(delta) patching** — ``GraphIndex.apply_delta`` splices a single
  update into the inverted lists, label-pair edge lists, and
  degree/neighbor-label signatures: insertions splice *in* at the
  canonical (``repr``) position, removals splice *out* (deleting entries
  that empty), so a patched index is structurally identical to one
  rebuilt from scratch either way (pinned by
  ``tests/test_delta_maintenance.py``);
* **:class:`IndexMaintainer`** — subscribes to a graph, buffers its
  deltas, and on :meth:`IndexMaintainer.index` brings the maintained
  index current: patching when the buffered run is contiguous, falling
  back to a full rebuild only for observation gaps (e.g. after
  :meth:`IndexMaintainer.detach`) or bursts larger than the graph itself,
  where a rebuild is the cheaper move.  Oversized bursts coalesce into
  one deferred rebuild: crossing the patch limit drops the buffer and
  later deltas are absorbed without being stored, so an arbitrarily long
  burst costs O(1) maintained state and a single rebuild.

The maintainer re-caches the patched index on the graph itself, so every
hot path that resolves indexes through ``get_index`` transparently sees
the O(delta) maintenance — no call-site changes needed.  ``get_index``'s
own rebuild-on-stale behavior remains the reference path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple, Union

from ..graph.labeled_graph import Label, LabeledGraph, Vertex
from .graph_index import GraphIndex, _label_pair_key, get_index


@dataclass(frozen=True)
class GraphDelta:
    """Base class for typed mutation deltas.

    ``version`` is the graph's :meth:`mutation_version` *after* the
    mutation; the publisher bumps the counter by exactly one per delta,
    so versions of a faithful observation run are consecutive.
    """

    version: int


@dataclass(frozen=True)
class VertexAdded(GraphDelta):
    """A new vertex (no incident edges yet) joined the graph."""

    vertex: Vertex
    label: Label


@dataclass(frozen=True)
class _EdgeDelta(GraphDelta):
    """Shared shape of the edge deltas (endpoint labels included)."""

    u: Vertex
    v: Vertex
    label_u: Label
    label_v: Label

    def label_pair(self) -> Tuple[Label, Label]:
        """Canonical unordered label pair of the touched edge's endpoints."""
        return _label_pair_key(self.label_u, self.label_v)


@dataclass(frozen=True)
class EdgeAdded(_EdgeDelta):
    """A new undirected edge joined the graph."""


@dataclass(frozen=True)
class EdgeRemoved(_EdgeDelta):
    """An undirected edge left the graph."""


@dataclass(frozen=True)
class VertexRemoved(GraphDelta):
    """A vertex left the graph (its incident-edge removals were published first)."""

    vertex: Vertex
    label: Label


#: Insertion-shaped delta kinds.  Kept as a named subset because the
#: growing direction still has special structure (supports are monotone
#: under it); the index itself patches the full :data:`PATCHABLE_DELTAS`.
INSERTION_DELTAS = (VertexAdded, EdgeAdded)

#: Delta kinds a GraphIndex can absorb in O(delta).  Removals patch as
#: the exact inverse splices of insertions — ``remove_vertex`` publishes
#: the incident ``EdgeRemoved`` deltas before its ``VertexRemoved``, so a
#: contiguous replay only ever removes isolated vertices from the index.
PATCHABLE_DELTAS = (VertexAdded, EdgeAdded, EdgeRemoved, VertexRemoved)

AnyDelta = Union[VertexAdded, EdgeAdded, EdgeRemoved, VertexRemoved]


class IndexMaintainer:
    """Keep one graph's :class:`GraphIndex` current by patching, not rebuilding.

    Attach with ``IndexMaintainer(graph)``; the maintainer subscribes to
    the graph's mutation-observer hook and buffers deltas as they are
    published.  :meth:`index` returns an index that is current for the
    graph's present version, obtained by (in preference order):

    1. returning the maintained index untouched when nothing changed;
    2. adopting the graph's cached index when some other caller already
       rebuilt it (interleaved reads through ``get_index`` stay cheap);
    3. **patching** the maintained index in O(delta) when the buffered
       deltas form a contiguous run up to the graph's current version —
       insertions and removals alike;
    4. rebuilding from scratch otherwise — an observation gap (attached
       late, detached in between, a buffer that cannot replay the version
       counter exactly) or a burst that outgrew the patch limit.

    The **patch limit** bounds buffered state: once a run grows past
    ``patch_limit`` deltas (default: ``max(64, |V| + |E|)``, the point
    where replaying the run stops being cheaper than one rebuild), the
    buffer is dropped, a single rebuild is deferred, and every further
    delta of the burst is absorbed without being stored — so an
    arbitrarily long burst costs O(1) maintained state and exactly one
    rebuild at the next :meth:`index` call (``deltas_coalesced`` counts
    the absorbed deltas).

    The returned index is re-cached on the graph, so subsequent
    ``get_index`` calls (matcher, miner, overlap graphs …) reuse it.
    ``patches_applied`` / ``rebuilds`` count how each refresh was served.
    """

    __slots__ = (
        "graph",
        "_buffer",
        "_observer",
        "_attached",
        "_index",
        "_patch_limit",
        "_rebuild_pending",
        "patches_applied",
        "rebuilds",
        "deltas_coalesced",
    )

    def __init__(self, graph: LabeledGraph, patch_limit: Optional[int] = None) -> None:
        if patch_limit is not None and patch_limit < 1:
            raise ValueError("patch_limit must be a positive delta count")
        self.graph = graph
        self._buffer: List[AnyDelta] = []
        self._observer = graph.subscribe(self._observe)
        self._attached = True
        self._index = get_index(graph)
        self._patch_limit = patch_limit
        self._rebuild_pending = False
        self.patches_applied = 0
        self.rebuilds = 0
        self.deltas_coalesced = 0

    def _effective_patch_limit(self) -> int:
        if self._patch_limit is not None:
            return self._patch_limit
        return max(64, self.graph.num_vertices + self.graph.num_edges)

    def _observe(self, delta: AnyDelta) -> None:
        """Buffer one published delta, folding oversized bursts into one rebuild.

        Once a rebuild is pending, every subsequent delta is already
        covered by that rebuild (it reads the graph's final state), so
        nothing further is buffered until the rebuild is served.
        """
        if self._rebuild_pending:
            self.deltas_coalesced += 1
            return
        if isinstance(delta, PATCHABLE_DELTAS):
            self._buffer.append(delta)
            if len(self._buffer) <= self._effective_patch_limit():
                return
        # Unknown delta kind, or the burst outgrew the patch limit: the
        # buffered run is superseded by one deferred rebuild.
        self.deltas_coalesced += len(self._buffer) + (
            0 if isinstance(delta, PATCHABLE_DELTAS) else 1
        )
        self._buffer.clear()
        self._rebuild_pending = True

    # ------------------------------------------------------------------
    @property
    def attached(self) -> bool:
        """True while the maintainer still observes the graph's mutations."""
        return self._attached

    def detach(self) -> None:
        """Stop observing.  Later :meth:`index` calls detect the gap and rebuild."""
        if self._attached:
            self.graph.unsubscribe(self._observer)
            self._attached = False

    # ------------------------------------------------------------------
    @property
    def rebuild_pending(self) -> bool:
        """True while a coalesced rebuild is deferred to the next :meth:`index`."""
        return self._rebuild_pending

    def index(self) -> GraphIndex:
        """The maintained index, brought current for the graph's version."""
        graph = self.graph
        target = graph.mutation_version()
        if self._index.version == target:
            self._reset_observation()
            return self._index
        cached = graph.cached_index()
        if isinstance(cached, GraphIndex) and cached.is_current():
            # Someone already paid for a fresh index (an interleaved read
            # through get_index); adopt it instead of duplicating the work.
            self._index = cached
            self._reset_observation()
            return cached
        deltas = [d for d in self._buffer if d.version > self._index.version]
        if not self._rebuild_pending and self._patchable(deltas, target):
            for delta in deltas:
                self._index.apply_delta(delta)
            self.patches_applied += len(deltas)
        else:
            self._index = GraphIndex.build(graph)
            self.rebuilds += 1
        self._reset_observation()
        graph.cache_index(self._index)
        return self._index

    def _reset_observation(self) -> None:
        self._buffer.clear()
        self._rebuild_pending = False

    def _patchable(self, deltas: List[AnyDelta], target: int) -> bool:
        """True when ``deltas`` is a contiguous patchable replay to ``target``."""
        if not self._attached or not deltas:
            return False
        if deltas[0].version != self._index.version + 1:
            return False
        if deltas[-1].version != target:
            return False
        if any(b.version != a.version + 1 for a, b in zip(deltas, deltas[1:])):
            return False
        return all(isinstance(d, PATCHABLE_DELTAS) for d in deltas)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "attached" if self._attached else "detached"
        if self._rebuild_pending:
            state += " rebuild-pending"
        return (
            f"<IndexMaintainer {state} v{self._index.version} "
            f"patches={self.patches_applied} rebuilds={self.rebuilds} "
            f"coalesced={self.deltas_coalesced}>"
        )
