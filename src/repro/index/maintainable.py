"""The maintainable-index protocol shared by flat and sharded indexes.

PR 2 taught :class:`~repro.index.graph_index.GraphIndex` to absorb typed
graph deltas in O(delta); the partition layer's
:class:`~repro.partition.sharded_index.ShardedIndex` learns the same
trick in this PR.  Both sit behind one protocol so the maintenance
machinery — delta buffering, contiguity checks, burst coalescing,
rebuild fallbacks — exists exactly once:

* :class:`MaintainableIndex` — the structure contract.  A maintainable
  index snapshots its graph's mutation version, patches one typed delta
  at a time (``apply_delta``), reports staleness (``is_current``), and
  knows how to produce a from-scratch replacement of itself for the
  graph's current state (``rebuilt`` — the fallback when patching would
  be unsound or wasteful);
* :class:`DeltaMaintainer` — the lifecycle contract.  A maintainer
  subscribes to the graph's mutation-observer hook, buffers published
  deltas, and on :meth:`DeltaMaintainer.refresh` brings its index
  current: patching contiguous runs, coalescing oversized bursts into
  one deferred rebuild (O(1) state past the patch limit), and rebuilding
  across observation gaps.  Subclasses supply the index and optional
  adoption/re-caching hooks; the bookkeeping — previously duplicated
  between the flat and sharded maintainers — lives here.

Concrete pairs: (:class:`~repro.index.graph_index.GraphIndex`,
:class:`~repro.index.delta.IndexMaintainer`) and
(:class:`~repro.partition.sharded_index.ShardedIndex`,
:class:`~repro.partition.maintainer.ShardedIndexMaintainer`).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import List, Optional, Tuple

from ..graph.labeled_graph import LabeledGraph
from ..obs import metrics as _metrics
from ..obs.logs import get_logger

_LOG = get_logger("index.maintainer")


class MaintainableIndex(ABC):
    """A graph-derived structure that can be patched delta-by-delta.

    Implementations snapshot ``graph`` and its ``mutation_version()`` at
    build time (``version``), splice typed deltas in place through
    :meth:`apply_delta`, and rebuild from scratch through
    :meth:`rebuilt`.  The invariant every implementation must keep: a
    patched instance is **structurally identical** to one rebuilt from
    scratch at the same version — patching changes how the structure
    reached its state, never the state itself.
    """

    __slots__ = ()

    graph: LabeledGraph
    version: int

    @abstractmethod
    def apply_delta(self, delta) -> bool:
        """Patch this index in place for one typed delta.

        Advances ``version`` to the delta's version and returns ``True``;
        returns ``False`` for delta kinds the index cannot patch (the
        caller falls back to :meth:`rebuilt`).  Deltas must be applied
        contiguously — :class:`DeltaMaintainer` enforces this.
        """

    @abstractmethod
    def rebuilt(self) -> "MaintainableIndex":
        """A from-scratch replacement of this index for the graph's
        current state, preserving the index's own configuration (shard
        count, partition method, ...)."""

    def is_current(self) -> bool:
        """True while the indexed graph has not been mutated."""
        return self.graph.mutation_version() == self.version


class DeltaMaintainer:
    """Keep one :class:`MaintainableIndex` current by patching, not rebuilding.

    The shared lifecycle core: subclasses construct their index, pass it
    to ``__init__``, and expose :meth:`refresh` (usually under a
    domain-specific name).  On each refresh the maintainer serves, in
    preference order:

    1. the maintained index untouched, when nothing changed;
    2. an adopted replacement from :meth:`_adopt`, when some interleaved
       reader already paid for a fresh structure;
    3. the maintained index **patched** in O(delta), when the buffered
       deltas form a contiguous patchable replay of the version counter;
    4. a from-scratch :meth:`MaintainableIndex.rebuilt` otherwise — an
       observation gap (attached late, detached in between, a buffer
       that cannot replay the version counter exactly) or a burst that
       outgrew the patch limit.

    The **patch limit** bounds buffered state: once a run grows past
    ``patch_limit`` deltas (default ``max(64, |V| + |E|)``, the point
    where replaying the run stops being cheaper than one rebuild), the
    buffer is dropped, a single rebuild is deferred, and every further
    delta of the burst is absorbed without being stored — an arbitrarily
    long burst costs O(1) maintained state and exactly one rebuild at
    the next refresh (``deltas_coalesced`` counts the absorbed deltas).

    ``patches_applied`` / ``rebuilds`` count how each refresh was served.
    """

    #: Delta kinds the maintained index can absorb in O(delta).
    #: Subclasses set this (normally ``repro.index.delta.PATCHABLE_DELTAS``).
    patchable_kinds: Tuple[type, ...] = ()

    #: Metrics-subsystem label: counters land on
    #: ``repro_<obs_subsystem>_{patches_applied,rebuilds,deltas_coalesced}``.
    obs_subsystem: str = "index"

    __slots__ = (
        "graph",
        "_buffer",
        "_observer",
        "_attached",
        "_index",
        "_patch_limit",
        "_rebuild_pending",
        "patches_applied",
        "rebuilds",
        "deltas_coalesced",
    )

    def __init__(
        self,
        graph: LabeledGraph,
        index: MaintainableIndex,
        patch_limit: Optional[int] = None,
    ) -> None:
        if patch_limit is not None and patch_limit < 1:
            raise ValueError("patch_limit must be a positive delta count")
        self.graph = graph
        self._index = index
        self._buffer: List = []
        self._observer = graph.subscribe(self._observe)
        self._attached = True
        self._patch_limit = patch_limit
        self._rebuild_pending = False
        self.patches_applied = 0
        self.rebuilds = 0
        self.deltas_coalesced = 0
        registry = _metrics.get_registry()
        for name in ("patches_applied", "rebuilds", "deltas_coalesced"):
            registry.counter(f"repro_{self.obs_subsystem}_{name}")

    # ------------------------------------------------------------------
    # subclass hooks
    # ------------------------------------------------------------------
    def _adopt(self) -> Optional[MaintainableIndex]:
        """A current replacement some interleaved reader already built,
        or ``None``.  Default: no adoption source."""
        return None

    def _store(self, index: MaintainableIndex) -> None:
        """Publish a freshly patched/rebuilt index (e.g. re-cache it on
        the graph).  Default: nothing to publish."""

    # ------------------------------------------------------------------
    # observation
    # ------------------------------------------------------------------
    def _effective_patch_limit(self) -> int:
        if self._patch_limit is not None:
            return self._patch_limit
        return max(64, self.graph.num_vertices + self.graph.num_edges)

    def _observe(self, delta) -> None:
        """Buffer one published delta, folding oversized bursts into one rebuild.

        Once a rebuild is pending, every subsequent delta is already
        covered by that rebuild (it reads the graph's final state), so
        nothing further is buffered until the rebuild is served.
        """
        if self._rebuild_pending:
            self.deltas_coalesced += 1
            _metrics.counter(f"repro_{self.obs_subsystem}_deltas_coalesced").inc()
            return
        if isinstance(delta, self.patchable_kinds):
            self._buffer.append(delta)
            if len(self._buffer) <= self._effective_patch_limit():
                return
        # Unknown delta kind, or the burst outgrew the patch limit: the
        # buffered run is superseded by one deferred rebuild.
        coalesced = len(self._buffer) + (
            0 if isinstance(delta, self.patchable_kinds) else 1
        )
        self.deltas_coalesced += coalesced
        _metrics.counter(f"repro_{self.obs_subsystem}_deltas_coalesced").inc(
            coalesced
        )
        self._buffer.clear()
        self._rebuild_pending = True

    @property
    def attached(self) -> bool:
        """True while the maintainer still observes the graph's mutations."""
        return self._attached

    def detach(self) -> None:
        """Stop observing.  Later refreshes detect the gap and rebuild."""
        if self._attached:
            self.graph.unsubscribe(self._observer)
            self._attached = False

    @property
    def rebuild_pending(self) -> bool:
        """True while a coalesced rebuild is deferred to the next refresh."""
        return self._rebuild_pending

    # ------------------------------------------------------------------
    # the refresh ladder
    # ------------------------------------------------------------------
    def refresh(self) -> MaintainableIndex:
        """The maintained index, brought current for the graph's version."""
        target = self.graph.mutation_version()
        if self._index.version == target:
            self._reset_observation()
            return self._index
        adopted = self._adopt()
        if adopted is not None:
            self._index = adopted
            self._reset_observation()
            return adopted
        deltas = [d for d in self._buffer if d.version > self._index.version]
        if not self._rebuild_pending and self._patchable(deltas, target):
            for delta in deltas:
                self._index.apply_delta(delta)
            self.patches_applied += len(deltas)
            _metrics.counter(
                f"repro_{self.obs_subsystem}_patches_applied"
            ).inc(len(deltas))
        else:
            reason = self._rebuild_reason(deltas)
            _LOG.warning(
                "%s demoted to a full rebuild (reason: %s, v%d -> v%d)",
                type(self).__name__,
                reason,
                self._index.version,
                target,
            )
            self._index = self._index.rebuilt()
            self.rebuilds += 1
            _metrics.counter(f"repro_{self.obs_subsystem}_rebuilds").inc()
            _metrics.counter(
                f"repro_{self.obs_subsystem}_rebuilds_{reason.replace('-', '_')}"
            ).inc()
        self._reset_observation()
        self._store(self._index)
        return self._index

    def _rebuild_reason(self, deltas: List) -> str:
        """Why this refresh could not be served by patching.

        ``patch-limit``: a burst outgrew the patch limit and was coalesced
        into this one deferred rebuild.  ``unpatchable``: the buffered run
        is contiguous but contains a delta kind the index cannot splice.
        ``gap``: everything else — attached late, detached in between, or
        a buffer that cannot replay the version counter exactly.
        """
        if self._rebuild_pending:
            return "patch-limit"
        if (
            self._attached
            and deltas
            and deltas[0].version == self._index.version + 1
            and all(b.version == a.version + 1 for a, b in zip(deltas, deltas[1:]))
            and not all(isinstance(d, self.patchable_kinds) for d in deltas)
        ):
            return "unpatchable"
        return "gap"

    def _reset_observation(self) -> None:
        self._buffer.clear()
        self._rebuild_pending = False

    def _patchable(self, deltas: List, target: int) -> bool:
        """True when ``deltas`` is a contiguous patchable replay to ``target``."""
        if not self._attached or not deltas:
            return False
        if deltas[0].version != self._index.version + 1:
            return False
        if deltas[-1].version != target:
            return False
        if any(b.version != a.version + 1 for a, b in zip(deltas, deltas[1:])):
            return False
        return all(isinstance(d, self.patchable_kinds) for d in deltas)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "attached" if self._attached else "detached"
        if self._rebuild_pending:
            state += " rebuild-pending"
        return (
            f"<{type(self).__name__} {state} v{self._index.version} "
            f"patches={self.patches_applied} rebuilds={self.rebuilds} "
            f"coalesced={self.deltas_coalesced}>"
        )
