"""Exact reconstructions of the data graphs and patterns of Figures 1-10.

Each ``figureN()`` returns a :class:`FigureExample` with the data graph, the
pattern(s), and the values the thesis text pins down for that figure.  The
integration tests assert every pinned value; the ``bench_figures`` benchmark
prints the full worksheets.

Where the thesis prose fully determines the example (Figs. 2, 4, 5, 6 give
occurrence tables; Figs. 9, 10 give the overlap relations), the
reconstruction is exact.  Where the figure is only a sketch (Figs. 1, 3, 7,
8 — shadings without printed adjacency), we build the example the caption
describes and assert the caption's claims; DESIGN.md records this.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..graph.labeled_graph import LabeledGraph
from ..graph.pattern import Pattern


@dataclass
class FigureExample:
    """One reconstructed figure: graph, pattern(s), and pinned expectations."""

    figure_id: str
    title: str
    data_graph: LabeledGraph
    pattern: Pattern
    expected: Dict[str, float] = field(default_factory=dict)
    superpattern: Optional[Pattern] = None
    notes: str = ""


def figure1() -> FigureExample:
    """Figure 1 — the hypergraph-framework sketch.

    A one-edge pattern (two distinct labels) in a 5-vertex data graph; the
    figure illustrates the occurrence hypergraph with four edges and its
    dual.  We reconstruct it as the alternating path 1-2-3-4-5, which has
    exactly four one-edge instances (e1..e4) and every framework object the
    figure draws.
    """
    data = LabeledGraph(
        vertices=[(1, "w"), (2, "d"), (3, "w"), (4, "d"), (5, "w")],
        edges=[(1, 2), (2, 3), (3, 4), (4, 5)],
        name="fig1-data",
    )
    pattern = Pattern.from_edges(
        [("v1", "w"), ("v2", "d")], [("v1", "v2")], name="fig1-pattern"
    )
    return FigureExample(
        figure_id="fig1",
        title="Hypergraph framework sketch (one-edge pattern)",
        data_graph=data,
        pattern=pattern,
        expected={
            "occurrences": 4,
            "instances": 4,
            "mni": 2,
            "mi": 2,
            "mvc": 2,
            "mis": 2,
            "mies": 2,
        },
        notes="Reconstruction: alternating 5-path; 4 hyperedges as in the sketch.",
    )


def figure2() -> FigureExample:
    """Figure 2 — MNI over-estimates: a triangle with 6 occurrences, 1 instance.

    Data graph: triangle {1,2,3} (one label) with pendant vertices 4-2, 5-1,
    6-3.  The occurrence table lists the 6 permutations of (1,2,3); every
    pattern node has 3 images, so MNI = 3 while there is a single instance
    and MIS = 1.
    """
    label = "a"
    data = LabeledGraph(
        vertices=[(i, label) for i in range(1, 7)],
        edges=[(1, 2), (2, 3), (1, 3), (2, 4), (1, 5), (3, 6)],
        name="fig2-data",
    )
    pattern = Pattern.from_edges(
        [("v1", label), ("v2", label), ("v3", label)],
        [("v1", "v2"), ("v2", "v3"), ("v1", "v3")],
        name="fig2-triangle",
    )
    return FigureExample(
        figure_id="fig2",
        title="MNI overestimates the count of a triangle pattern",
        data_graph=data,
        pattern=pattern,
        expected={
            "occurrences": 6,
            "instances": 1,
            "mni": 3,
            "mis": 1,
            "mies": 1,
            "mvc": 1,
        },
        notes="Occurrence table and counts printed verbatim in the thesis.",
    )


def figure3() -> FigureExample:
    """Figure 3 — occurrence/instance hypergraph of a labeled triangle.

    20-vertex data graph; the triangle pattern has three distinct labels so
    occurrences and instances coincide.  The thesis lists the hyperedges:
    e1={1,2,3}, e2={4,5,6}, e3={4,6,8}, e4={8,9,10}, e5={11,13,17},
    e6={11,15,16}.
    """
    labels = {
        1: "A", 2: "B", 3: "C",
        4: "A", 5: "B", 6: "C",
        8: "B", 9: "A", 10: "C",
        11: "A", 13: "B", 17: "C",
        15: "B", 16: "C",
        # Vertices outside any triangle occurrence:
        7: "B", 12: "C", 14: "A", 18: "A", 19: "B", 20: "A",
    }
    triangles = [
        (1, 2, 3),
        (4, 5, 6),
        (4, 6, 8),
        (8, 9, 10),
        (11, 13, 17),
        (11, 15, 16),
    ]
    edges = set()
    for a, b, c in triangles:
        edges.update(
            {tuple(sorted((a, b))), tuple(sorted((b, c))), tuple(sorted((a, c)))}
        )
    # Sparse extra structure that creates no new A-B-C triangle.
    edges.update({(4, 7), (11, 12), (13, 14), (18, 19), (19, 20)})
    data = LabeledGraph(
        vertices=sorted(labels.items()),
        edges=sorted(edges),
        name="fig3-data",
    )
    pattern = Pattern.from_edges(
        [("v1", "A"), ("v2", "B"), ("v3", "C")],
        [("v1", "v2"), ("v2", "v3"), ("v1", "v3")],
        name="fig3-triangle",
    )
    return FigureExample(
        figure_id="fig3",
        title="Occurrence/instance hypergraph of a triangular pattern",
        data_graph=data,
        pattern=pattern,
        expected={
            "occurrences": 6,
            "instances": 6,
            "mni": 4,
            "mi": 4,
            "mvc": 4,
            "mis": 4,
            "mies": 4,
        },
        notes="Hyperedge sets pinned by the thesis text; support values derived.",
    )


#: The six hyperedges the thesis lists for Figure 3, for direct assertion.
FIGURE3_EDGE_SETS = [
    frozenset({1, 2, 3}),
    frozenset({4, 5, 6}),
    frozenset({4, 6, 8}),
    frozenset({8, 9, 10}),
    frozenset({11, 13, 17}),
    frozenset({11, 15, 16}),
]


def figure4() -> FigureExample:
    """Figure 4 — MNI vs MI on a 4-path.

    Data graph: path 1-2-3-4 with labels a,b,b,a; pattern: path
    v1(a)-v2(b)-v3(b).  Occurrences (1,2,3) and (4,3,2); every node has two
    images so MNI = 2, but the transitive pair {v2,v3} has a single image
    *set* {2,3}, so MI = 1.
    """
    data = LabeledGraph(
        vertices=[(1, "a"), (2, "b"), (3, "b"), (4, "a")],
        edges=[(1, 2), (2, 3), (3, 4)],
        name="fig4-data",
    )
    pattern = Pattern.from_edges(
        [("v1", "a"), ("v2", "b"), ("v3", "b")],
        [("v1", "v2"), ("v2", "v3")],
        name="fig4-path",
    )
    return FigureExample(
        figure_id="fig4",
        title="MNI vs MI support measure",
        data_graph=data,
        pattern=pattern,
        expected={
            "occurrences": 2,
            "instances": 2,
            "mni": 2,
            "mi": 1,
            "mvc": 1,
            "mis": 1,
        },
        notes="Occurrence table (1,2,3)/(4,3,2) printed verbatim in the thesis.",
    )


def figure5() -> FigureExample:
    """Figure 5 — anti-monotonicity under extension.

    Same 6-vertex graph family as Fig. 2 but with pendants 4-2, 5-3, 6-3 so
    the occurrence table of the superpattern (triangle + pendant at v3)
    matches the thesis: f1..f6 extend to (1,2,3,5), (1,2,3,6), (1,3,2,4),
    (2,1,3,5), (2,1,3,6), (3,1,2,4); occurrences f4=(2,3,1,-) and
    f6=(3,2,1,-) cannot extend.  MVC stays 1 through the extension.
    """
    label = "a"
    data = LabeledGraph(
        vertices=[(i, label) for i in range(1, 7)],
        edges=[(1, 2), (2, 3), (1, 3), (2, 4), (3, 5), (3, 6)],
        name="fig5-data",
    )
    triangle = Pattern.from_edges(
        [("v1", label), ("v2", label), ("v3", label)],
        [("v1", "v2"), ("v2", "v3"), ("v1", "v3")],
        name="fig5-triangle",
    )
    extended = Pattern.from_edges(
        [("v1", label), ("v2", label), ("v3", label), ("v4", label)],
        [("v1", "v2"), ("v2", "v3"), ("v1", "v3"), ("v3", "v4")],
        name="fig5-triangle+pendant",
    )
    return FigureExample(
        figure_id="fig5",
        title="Occurrences of a pattern while being extended to a superpattern",
        data_graph=data,
        pattern=triangle,
        superpattern=extended,
        expected={
            "occurrences": 6,
            "super_occurrences": 6,
            "mvc": 1,
            "super_mvc": 1,
        },
        notes="Superpattern occurrence table printed verbatim in the thesis.",
    )


def figure6() -> FigureExample:
    """Figure 6 — partial overlap defeats MI: the double star.

    Data graph edges: 1-5, 1-6, 1-7, 1-8, 2-8, 3-8, 4-8, with labels
    a on {1,2,3,4} and b on {5,6,7,8}; pattern: single edge a-b.  The
    thesis pins MIS = 2, MVC = 2, MI = 4, MNI = 4 over 7 occurrences.
    """
    data = LabeledGraph(
        vertices=[(i, "a") for i in (1, 2, 3, 4)] + [(i, "b") for i in (5, 6, 7, 8)],
        edges=[(1, 5), (1, 6), (1, 7), (1, 8), (2, 8), (3, 8), (4, 8)],
        name="fig6-data",
    )
    pattern = Pattern.from_edges(
        [("v1", "a"), ("v2", "b")], [("v1", "v2")], name="fig6-edge"
    )
    return FigureExample(
        figure_id="fig6",
        title="MNI over-estimates by ignoring partial overlap",
        data_graph=data,
        pattern=pattern,
        expected={
            "occurrences": 7,
            "instances": 7,
            "mni": 4,
            "mi": 4,
            "mvc": 2,
            "mis": 2,
            "mies": 2,
        },
        notes="All four headline values printed verbatim in the thesis.",
    )


def figure7() -> FigureExample:
    """Figure 7 — the MNI vs MI view of a 3-path pattern.

    Conceptual figure: MNI sees singleton node subsets; MI additionally
    sees the transitive subset of the symmetric pair.  We use the uniform
    3-path (v1-v2-v3, one label): its MI family contains {v1},{v2},{v3},
    {v1,v3} (end nodes symmetric in the full path) and {v2,v3}/{v1,v2}
    (symmetric inside the one-edge subpatterns).
    """
    data = LabeledGraph(
        vertices=[(i, "a") for i in range(1, 5)],
        edges=[(1, 2), (2, 3), (3, 4)],
        name="fig7-data",
    )
    pattern = Pattern.from_edges(
        [("v1", "a"), ("v2", "a"), ("v3", "a")],
        [("v1", "v2"), ("v2", "v3")],
        name="fig7-path",
    )
    return FigureExample(
        figure_id="fig7",
        title="MNI and MI's view of a pattern in the hypergraph framework",
        data_graph=data,
        pattern=pattern,
        expected={"transitive_subsets": 6},
        notes=(
            "Expected family: 3 singletons + {v1,v3} (path symmetry) + "
            "{v1,v2} and {v2,v3} (edge-subpattern symmetry)."
        ),
    )


def figure8() -> FigureExample:
    """Figure 8 — instance hypergraph + dual on a 4-cycle.

    Data graph: the 4-cycle 1-2, 2-4, 4-3, 3-1 (one label); pattern: a
    single uniform edge.  Four instances e1..e4; MIS = MIES = 2 (opposite
    edges), dual hypergraph has one 2-edge per data vertex.
    """
    data = LabeledGraph(
        vertices=[(i, "a") for i in (1, 2, 3, 4)],
        edges=[(1, 2), (2, 4), (3, 4), (1, 3)],
        name="fig8-data",
    )
    pattern = Pattern.from_edges(
        [("v1", "a"), ("v2", "a")], [("v1", "v2")], name="fig8-edge"
    )
    return FigureExample(
        figure_id="fig8",
        title="Instance hypergraph and its dual on a small cycle",
        data_graph=data,
        pattern=pattern,
        expected={
            "occurrences": 8,
            "instances": 4,
            "mis": 2,
            "mies": 2,
            "mvc": 2,
            "mni": 4,
            "mi": 4,
        },
        notes="MIS computed in the thesis as 2 (e.g. {e1, e3}).",
    )


def figure9() -> FigureExample:
    """Figure 9 — structural overlap without harmful overlap.

    Data graph: path 1-2-3-4 plus edge 3-5; labels 1,5 -> a and 2,3,4 -> b;
    pattern: path v1(a)-v2(b)-v3(b).  The three occurrences are
    g1=(1,2,3), g2=(5,3,4), g3=(5,3,2).  The thesis derives: SO(g1,g2)
    without HO; SO and HO together for (g1,g3); MI = 2.
    """
    data = LabeledGraph(
        vertices=[(1, "a"), (2, "b"), (3, "b"), (4, "b"), (5, "a")],
        edges=[(1, 2), (2, 3), (3, 4), (3, 5)],
        name="fig9-data",
    )
    pattern = Pattern.from_edges(
        [("v1", "a"), ("v2", "b"), ("v3", "b")],
        [("v1", "v2"), ("v2", "v3")],
        name="fig9-path",
    )
    return FigureExample(
        figure_id="fig9",
        title="Structural overlap != harmful overlap",
        data_graph=data,
        pattern=pattern,
        expected={"occurrences": 3, "mi": 2},
        notes="Overlap relations asserted pairwise in the integration test.",
    )


def figure10() -> FigureExample:
    """Figure 10 — simple vs harmful vs structural overlap on a 9-vertex graph.

    Pattern: path v1(b)-v2(a)-v3(c)-v4(b) — no non-trivial transitive pair,
    so structural overlap requires a shared fixed image.  Occurrences:
    f1=(1,2,3,4), f2=(4,5,6,1), f3=(1,7,8,9).  Then HO(f1,f2) holds without
    SO (images swap between the non-transitive end nodes), while (f2,f3)
    overlap only simply.
    """
    data = LabeledGraph(
        vertices=[
            (1, "b"), (2, "a"), (3, "c"), (4, "b"),
            (5, "a"), (6, "c"), (7, "a"), (8, "c"), (9, "b"),
        ],
        edges=[(1, 2), (2, 3), (3, 4), (4, 5), (5, 6), (6, 1), (1, 7), (7, 8), (8, 9)],
        name="fig10-data",
    )
    pattern = Pattern.from_edges(
        [("v1", "b"), ("v2", "a"), ("v3", "c"), ("v4", "b")],
        [("v1", "v2"), ("v2", "v3"), ("v3", "v4")],
        name="fig10-path",
    )
    return FigureExample(
        figure_id="fig10",
        title="Relationship of structural, harmful, and simple overlap",
        data_graph=data,
        pattern=pattern,
        expected={"occurrences": 3},
        notes="Pairwise overlap relations asserted in the integration test.",
    )


#: All figure builders, keyed by id, in presentation order.
ALL_FIGURES: Dict[str, Callable[[], FigureExample]] = {
    "fig1": figure1,
    "fig2": figure2,
    "fig3": figure3,
    "fig4": figure4,
    "fig5": figure5,
    "fig6": figure6,
    "fig7": figure7,
    "fig8": figure8,
    "fig9": figure9,
    "fig10": figure10,
}


def load_figure(figure_id: str) -> FigureExample:
    """Build one figure example by id (``fig1`` .. ``fig10``)."""
    if figure_id not in ALL_FIGURES:
        raise KeyError(
            f"unknown figure {figure_id!r}; expected one of {sorted(ALL_FIGURES)}"
        )
    return ALL_FIGURES[figure_id]()


def load_all_figures() -> List[FigureExample]:
    """Build every figure example in order."""
    return [builder() for builder in ALL_FIGURES.values()]
