"""A zoo of named small graphs and patterns for tests, examples, and docs.

These complement the paper-figure reconstructions with shapes that stress
specific code paths: dense overlap, label diversity, automorphism-heavy
patterns, and disconnected graphs.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple

from ..graph.builders import (
    complete_graph,
    cycle_graph,
    grid_graph,
    path_graph,
    star_graph,
)
from ..graph.labeled_graph import LabeledGraph


def uniform_triangle_fan(num_triangles: int = 4, label: str = "a") -> LabeledGraph:
    """``num_triangles`` triangles all sharing one apex vertex 0.

    A worst case for image-based measures: the apex welds every instance.
    """
    graph = LabeledGraph(name=f"fan{num_triangles}")
    graph.add_vertex(0, label)
    next_id = 1
    for _ in range(num_triangles):
        a, b = next_id, next_id + 1
        next_id += 2
        graph.add_vertex(a, label)
        graph.add_vertex(b, label)
        graph.add_edge(0, a)
        graph.add_edge(0, b)
        graph.add_edge(a, b)
    return graph


def disjoint_triangles(num_triangles: int = 3, label: str = "a") -> LabeledGraph:
    """``num_triangles`` vertex-disjoint triangles: zero overlap anywhere."""
    graph = LabeledGraph(name=f"tri{num_triangles}")
    next_id = 1
    for _ in range(num_triangles):
        a, b, c = next_id, next_id + 1, next_id + 2
        next_id += 3
        for vertex in (a, b, c):
            graph.add_vertex(vertex, label)
        graph.add_edge(a, b)
        graph.add_edge(b, c)
        graph.add_edge(a, c)
    return graph


def two_label_bipartite(left: int = 3, right: int = 3) -> LabeledGraph:
    """Complete bipartite graph, label 'a' on the left and 'b' on the right."""
    graph = LabeledGraph(name=f"K{left},{right}")
    for i in range(left):
        graph.add_vertex(("L", i), "a")
    for j in range(right):
        graph.add_vertex(("R", j), "b")
    for i in range(left):
        for j in range(right):
            graph.add_edge(("L", i), ("R", j))
    return graph


def long_chain(length: int = 10, labels: Tuple[str, ...] = ("a", "b")) -> LabeledGraph:
    """A path of the given length with cyclically repeating labels."""
    return path_graph(
        [labels[i % len(labels)] for i in range(length)], name=f"chain{length}"
    )


def labeled_cycle(
    length: int = 6, labels: Tuple[str, ...] = ("a", "b", "c")
) -> LabeledGraph:
    """A cycle with cyclically repeating labels."""
    return cycle_graph(
        [labels[i % len(labels)] for i in range(length)], name=f"ring{length}"
    )


def small_clique(size: int = 4, label: str = "a") -> LabeledGraph:
    """The uniform complete graph ``K_size``: maximal automorphism pressure."""
    return complete_graph([label] * size, name=f"K{size}")


def small_grid(rows: int = 3, cols: int = 3) -> LabeledGraph:
    """A uniform-label grid used by mining examples."""
    return grid_graph(rows, cols, ["a"], name=f"grid{rows}x{cols}")


def uniform_star(leaves: int = 5, label: str = "a") -> LabeledGraph:
    """A uniform star: many symmetric occurrences of the one-edge pattern."""
    return star_graph(label, [label] * leaves, name=f"star{leaves}")


ZOO: Dict[str, Callable[[], LabeledGraph]] = {
    "triangle_fan": uniform_triangle_fan,
    "disjoint_triangles": disjoint_triangles,
    "bipartite": two_label_bipartite,
    "chain": long_chain,
    "ring": labeled_cycle,
    "clique": small_clique,
    "grid": small_grid,
    "star": uniform_star,
}


def zoo_graph(name: str) -> LabeledGraph:
    """Build one zoo graph by name."""
    if name not in ZOO:
        raise KeyError(f"unknown zoo graph {name!r}; available: {sorted(ZOO)}")
    return ZOO[name]()


def zoo_names() -> List[str]:
    """All zoo graph names."""
    return sorted(ZOO)
