"""Seeded synthetic labeled-graph generators for the benchmark workloads.

The SIGMOD evaluation ran on large real graphs that the thesis text does not
identify; these generators are the substitution documented in DESIGN.md.
They produce graphs with controllable size, density, and label skew so the
benchmarks can sweep the regimes where the paper's theorems predict
crossovers (overlap density drives the MNI-vs-MIS gap; occurrence count
drives the linear-vs-NP-hard runtime split).

All generators take an explicit ``seed`` and are fully deterministic.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence

from ..errors import DatasetError
from ..graph.labeled_graph import LabeledGraph
from ..graph.pattern import Pattern
from ..isomorphism.vf2 import find_subgraph_isomorphisms

DEFAULT_ALPHABET = ("A", "B", "C", "D")


def _label_chooser(
    rng: random.Random, alphabet: Sequence[str], skew: float
) -> "random.Random.choices":
    """Return a function drawing labels with geometric skew.

    ``skew = 0`` is uniform; larger skew concentrates mass on the first
    labels (realistic label distributions are heavy-headed).
    """
    weights = [(1.0 + skew) ** (-i) for i in range(len(alphabet))]

    def choose() -> str:
        return rng.choices(alphabet, weights=weights, k=1)[0]

    return choose


def random_labeled_graph(
    num_vertices: int,
    edge_probability: float,
    alphabet: Sequence[str] = DEFAULT_ALPHABET,
    seed: int = 0,
    label_skew: float = 0.0,
    name: str = "",
) -> LabeledGraph:
    """Erdős–Rényi ``G(n, p)`` with labels drawn from ``alphabet``."""
    if num_vertices < 0:
        raise DatasetError("num_vertices must be non-negative")
    if not 0.0 <= edge_probability <= 1.0:
        raise DatasetError("edge_probability must be in [0, 1]")
    rng = random.Random(seed)
    choose = _label_chooser(rng, alphabet, label_skew)
    graph = LabeledGraph(name=name or f"er{num_vertices}p{edge_probability}")
    for i in range(num_vertices):
        graph.add_vertex(i, choose())
    for i in range(num_vertices):
        for j in range(i + 1, num_vertices):
            if rng.random() < edge_probability:
                graph.add_edge(i, j)
    return graph


def preferential_attachment_graph(
    num_vertices: int,
    edges_per_vertex: int,
    alphabet: Sequence[str] = DEFAULT_ALPHABET,
    seed: int = 0,
    label_skew: float = 0.0,
    name: str = "",
) -> LabeledGraph:
    """Barabási–Albert-style preferential attachment (heavy-tailed degrees).

    Heavy-tailed graphs are the regime where MNI over-counts the most:
    hubs create many partially-overlapping occurrences (the Fig. 6
    phenomenon at scale).
    """
    if edges_per_vertex < 1:
        raise DatasetError("edges_per_vertex must be >= 1")
    if num_vertices <= edges_per_vertex:
        raise DatasetError("num_vertices must exceed edges_per_vertex")
    rng = random.Random(seed)
    choose = _label_chooser(rng, alphabet, label_skew)
    graph = LabeledGraph(name=name or f"ba{num_vertices}m{edges_per_vertex}")
    # Seed clique of m+1 vertices.
    targets: List[int] = []
    for i in range(edges_per_vertex + 1):
        graph.add_vertex(i, choose())
    for i in range(edges_per_vertex + 1):
        for j in range(i + 1, edges_per_vertex + 1):
            graph.add_edge(i, j)
            targets.extend((i, j))
    for new_vertex in range(edges_per_vertex + 1, num_vertices):
        graph.add_vertex(new_vertex, choose())
        chosen = set()
        while len(chosen) < edges_per_vertex:
            chosen.add(rng.choice(targets))
        for target in chosen:
            graph.add_edge(new_vertex, target)
            targets.extend((new_vertex, target))
    return graph


def planted_pattern_graph(
    pattern: Pattern,
    num_copies: int,
    background_vertices: int = 0,
    background_edge_probability: float = 0.0,
    overlap_fraction: float = 0.0,
    alphabet: Sequence[str] = DEFAULT_ALPHABET,
    seed: int = 0,
    name: str = "",
) -> LabeledGraph:
    """Plant ``num_copies`` of ``pattern``, optionally sharing vertices.

    ``overlap_fraction`` is the probability that a planted copy reuses one
    vertex of the previously planted copy (welding instances together);
    this directly controls the overlap-graph density and hence the gap
    between MIS and the image-based measures.  Background noise vertices
    and edges are added afterwards without touching planted labels.
    """
    if num_copies < 0:
        raise DatasetError("num_copies must be non-negative")
    if not 0.0 <= overlap_fraction <= 1.0:
        raise DatasetError("overlap_fraction must be in [0, 1]")
    rng = random.Random(seed)
    graph = LabeledGraph(name=name or f"planted{num_copies}x{pattern.num_nodes}")
    next_id = 0
    previous_copy: List[int] = []
    pattern_nodes = pattern.nodes()
    for _ in range(num_copies):
        mapping = {}
        weld_node: Optional[object] = None
        if previous_copy and rng.random() < overlap_fraction:
            # Reuse one vertex of the previous copy for the matching node.
            weld_index = rng.randrange(len(pattern_nodes))
            weld_node = pattern_nodes[weld_index]
            mapping[weld_node] = previous_copy[weld_index]
        for node in pattern_nodes:
            if node in mapping:
                continue
            mapping[node] = next_id
            graph.add_vertex(next_id, pattern.label_of(node))
            next_id += 1
        for u, v in pattern.edges():
            if not graph.has_edge(mapping[u], mapping[v]):
                graph.add_edge(mapping[u], mapping[v])
        previous_copy = [mapping[node] for node in pattern_nodes]
    # Background noise with labels outside the planted alphabet where
    # possible, so the planted occurrence structure is preserved.
    noise_labels = [lbl for lbl in alphabet] or ["noise"]
    first_noise = next_id
    for _ in range(background_vertices):
        graph.add_vertex(next_id, f"bg_{rng.choice(noise_labels)}")
        next_id += 1
    noise_ids = list(range(first_noise, next_id))
    for i, u in enumerate(noise_ids):
        for v in noise_ids[i + 1:]:
            if rng.random() < background_edge_probability:
                graph.add_edge(u, v)
    return graph


def community_graph(
    num_communities: int,
    community_size: int,
    intra_probability: float = 0.5,
    inter_probability: float = 0.01,
    alphabet: Sequence[str] = DEFAULT_ALPHABET,
    seed: int = 0,
    name: str = "",
) -> LabeledGraph:
    """A planted-partition (stochastic block) labeled graph."""
    if num_communities < 1 or community_size < 1:
        raise DatasetError("community counts must be positive")
    rng = random.Random(seed)
    choose = _label_chooser(rng, alphabet, 0.0)
    graph = LabeledGraph(name=name or f"sbm{num_communities}x{community_size}")
    total = num_communities * community_size
    for i in range(total):
        graph.add_vertex(i, choose())
    for i in range(total):
        for j in range(i + 1, total):
            same = (i // community_size) == (j // community_size)
            probability = intra_probability if same else inter_probability
            if rng.random() < probability:
                graph.add_edge(i, j)
    return graph


def graph_with_occurrence_count(
    pattern: Pattern,
    target_occurrences: int,
    overlap_fraction: float = 0.3,
    seed: int = 0,
    max_rounds: int = 60,
) -> LabeledGraph:
    """Grow a planted graph until the pattern has >= ``target_occurrences``.

    Used by the runtime-scaling benchmark, which needs graphs indexed by
    occurrence count rather than vertex count.
    """
    copies = max(1, target_occurrences // 2)
    for round_index in range(max_rounds):
        graph = planted_pattern_graph(
            pattern,
            num_copies=copies,
            overlap_fraction=overlap_fraction,
            seed=seed + round_index,
        )
        count = sum(1 for _ in find_subgraph_isomorphisms(pattern, graph))
        if count >= target_occurrences:
            return graph
        copies = max(copies + 1, int(copies * 1.5))
    raise DatasetError(
        f"could not reach {target_occurrences} occurrences within "
        f"{max_rounds} growth rounds"
    )
