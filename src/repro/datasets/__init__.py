"""Datasets: synthetic generators, the small-graph zoo, paper figures, I/O."""

from .synthetic import (
    community_graph,
    graph_with_occurrence_count,
    planted_pattern_graph,
    preferential_attachment_graph,
    random_labeled_graph,
)
from .paper_figures import (
    ALL_FIGURES,
    FIGURE3_EDGE_SETS,
    FigureExample,
    load_all_figures,
    load_figure,
)
from .zoo import ZOO, zoo_graph, zoo_names

__all__ = [
    "community_graph",
    "graph_with_occurrence_count",
    "planted_pattern_graph",
    "preferential_attachment_graph",
    "random_labeled_graph",
    "ALL_FIGURES",
    "FIGURE3_EDGE_SETS",
    "FigureExample",
    "load_all_figures",
    "load_figure",
    "ZOO",
    "zoo_graph",
    "zoo_names",
]
