"""MI — minimum instance support (Section 3.2, the paper's first new measure).

MI refines MNI with the pattern's topology: instead of single nodes it
minimizes the distinct-image-set count over all **transitive node subsets**
of connected subpatterns (automorphism orbits; Definitions 3.2.1–3.2.4).

Properties (Theorems 3.2–3.4, all verified by the test suite):

* anti-monotonic;
* linear-time in the number of occurrences (the subset family depends only
  on the pattern);
* ``sigma_MI <= sigma_MNI`` because singleton subsets are always in the
  family.
"""

from __future__ import annotations

from typing import FrozenSet, List, Optional, Sequence, Set, Tuple

from ..graph.automorphism import transitive_node_subsets
from ..graph.labeled_graph import Vertex
from ..graph.pattern import Pattern
from ..hypergraph.construction import HypergraphBundle
from ..isomorphism.matcher import Occurrence
from .base import register_measure


def coarse_grained_image_count(
    subset: FrozenSet[Vertex], occurrences: Sequence[Occurrence]
) -> int:
    """``c(W)`` — distinct image *sets* of node subset ``W`` (Def. 3.2.1).

    Images are compared as sets, so occurrences mapping ``W`` to the same
    vertices in a different arrangement count once (Fig. 4: images
    ``{2, 3}`` and ``{3, 2}`` collapse to one).
    """
    image_sets: Set[FrozenSet[Vertex]] = {
        occurrence.image_of_set(subset) for occurrence in occurrences
    }
    return len(image_sets)


def mi_support_from_occurrences(
    pattern: Pattern,
    occurrences: Sequence[Occurrence],
    max_subpattern_size: Optional[int] = None,
    induced: bool = True,
) -> int:
    """``sigma_MI(P, G)`` computed directly from an occurrence list.

    Parameters
    ----------
    max_subpattern_size:
        Cap on enumerated subpattern sizes (None = full family).  Any cap
        still yields an anti-monotonic measure between MI and MNI.
    induced:
        Restrict the subpattern family to induced connected subpatterns
        (the default; see ``repro.graph.automorphism`` for the trade-off).
    """
    if not occurrences:
        return 0
    best = None
    for subset in transitive_node_subsets(
        pattern, max_subpattern_size=max_subpattern_size, induced=induced
    ):
        count = coarse_grained_image_count(subset, occurrences)
        if best is None or count < best:
            best = count
    assert best is not None
    return best


def mi_support_breakdown(
    pattern: Pattern,
    occurrences: Sequence[Occurrence],
    max_subpattern_size: Optional[int] = None,
) -> List[Tuple[FrozenSet[Vertex], int]]:
    """Per-subset image counts ``(T, c(T))`` — the full MI worksheet.

    Useful for explaining *why* MI returned its value (the analysis layer
    prints this next to the MNI per-node counts).
    """
    return [
        (subset, coarse_grained_image_count(subset, occurrences))
        for subset in transitive_node_subsets(
            pattern, max_subpattern_size=max_subpattern_size
        )
    ]


@register_measure(
    name="mi",
    display_name="MI (minimum instance)",
    anti_monotonic=True,
    complexity="O(m)",
    description=(
        "Minimum distinct image-set count over transitive node subsets of "
        "connected subpatterns (this paper, Section 3.2)."
    ),
)
def mi_support(bundle: HypergraphBundle) -> float:
    """``sigma_MI(P, G)`` from a hypergraph bundle."""
    return float(mi_support_from_occurrences(bundle.pattern, bundle.occurrences))
