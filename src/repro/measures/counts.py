"""Raw occurrence / instance counts.

These are the "obvious" support definitions the paper rules out in
Section 2.2: both are intuitive but **not anti-monotonic** (a superpattern
can have more occurrences than its subpattern — Fig. 5 shows the triangle
with 6 occurrences extended to a superpattern with 6 occurrences where a
further extension could grow the count).  They remain useful as reference
points: MIS counts *independent* instances, MNI/MI approach the occurrence
and instance counts from below.
"""

from __future__ import annotations

from ..hypergraph.construction import HypergraphBundle
from .base import register_measure


@register_measure(
    name="occurrences",
    display_name="occurrence count",
    anti_monotonic=False,
    complexity="enumeration",
    description="Number of occurrences (isomorphisms) of the pattern; not anti-monotonic.",
)
def occurrence_count(bundle: HypergraphBundle) -> float:
    """The number of occurrences ``m`` of the pattern in the data graph."""
    return float(bundle.num_occurrences)


@register_measure(
    name="instances",
    display_name="instance count",
    anti_monotonic=False,
    complexity="enumeration",
    description="Number of instances (distinct image subgraphs); not anti-monotonic.",
)
def instance_count(bundle: HypergraphBundle) -> float:
    """The number of distinct instances of the pattern in the data graph."""
    return float(bundle.num_instances)
