"""MCP — minimum-clique-partition support (Calders et al., related work).

MCP partitions the overlap graph's vertices into the fewest cliques; the
partition size is an anti-monotonic support measure that upper-bounds MIS
(each clique contributes at most one independent vertex).  It is included
as the paper's principal overlap-graph-based *baseline variant*
(Section 5) so the benchmark harness can profile the full family.

Minimum clique partition of ``O`` equals proper coloring of the complement
of ``O``; we solve it by branch-and-bound graph coloring with a greedy
(largest-first) incumbent, budget-guarded like the other NP-hard solvers.
"""

from __future__ import annotations

from typing import List, Set

from ..errors import BudgetExceededError
from ..hypergraph.construction import HypergraphBundle
from ..hypergraph.overlap import OverlapGraph, instance_overlap_graph
from .base import register_measure


def greedy_clique_partition(graph: OverlapGraph) -> List[Set[int]]:
    """Greedy partition: repeatedly grow a clique from the lowest-id vertex."""
    remaining = set(graph.nodes)
    cliques: List[Set[int]] = []
    while remaining:
        seed = min(remaining)
        clique = {seed}
        candidates = graph.adjacency[seed] & remaining
        while candidates:
            extension = min(candidates)
            clique.add(extension)
            candidates &= graph.adjacency[extension]
        remaining -= clique
        cliques.append(clique)
    return cliques


def minimum_clique_partition(
    graph: OverlapGraph, budget: int = 500_000
) -> List[Set[int]]:
    """Exact minimum clique partition via B&B coloring of the complement.

    Vertices are assigned to clique slots in order; a vertex may join an
    existing clique only if adjacent (in the overlap graph) to all its
    members, or open a new clique.  Prune when the slot count reaches the
    incumbent.

    Raises
    ------
    BudgetExceededError
        After expanding ``budget`` search nodes.
    """
    nodes = sorted(graph.nodes, key=lambda n: -graph.degree(n))
    incumbent = greedy_clique_partition(graph)
    nodes_expanded = 0

    def branch(index: int, cliques: List[Set[int]]) -> None:
        nonlocal incumbent, nodes_expanded
        nodes_expanded += 1
        if nodes_expanded > budget:
            raise BudgetExceededError(budget)
        if len(cliques) >= len(incumbent):
            return
        if index == len(nodes):
            incumbent = [set(c) for c in cliques]
            return
        vertex = nodes[index]
        neighbors = graph.adjacency[vertex]
        for clique in cliques:
            if clique <= neighbors:
                clique.add(vertex)
                branch(index + 1, cliques)
                clique.discard(vertex)
        cliques.append({vertex})
        branch(index + 1, cliques)
        cliques.pop()

    branch(0, [])
    return incumbent


def mcp_support_of(graph: OverlapGraph, budget: int = 500_000) -> int:
    """``sigma_MCP`` of an overlap graph: minimum clique partition size."""
    if not graph.nodes:
        return 0
    return len(minimum_clique_partition(graph, budget=budget))


@register_measure(
    name="mcp",
    display_name="MCP (min clique partition)",
    anti_monotonic=True,
    complexity="NP-hard (B&B)",
    description=(
        "Minimum clique partition of the instance overlap graph "
        "(Calders et al. baseline); >= MIS."
    ),
)
def mcp_support(bundle: HypergraphBundle) -> float:
    """``sigma_MCP(P, G)`` on the instance overlap graph."""
    graph = instance_overlap_graph(bundle.instances)
    return float(mcp_support_of(graph))
