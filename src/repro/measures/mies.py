"""MIES — maximum independent edge set of the hypergraph (Definition 4.2.1).

An independent edge set is a family of pairwise-disjoint hyperedges; MIES is
the maximum size of such a family (hypergraph matching / set packing).
Theorem 4.1 proves ``sigma_MIES = sigma_MIS`` on the instance hypergraph,
which is how the overlap-graph lineage of measures embeds into the
hypergraph framework — the test suite verifies the equality on every
example and on random graphs.

Solver: branch-and-bound set packing — branch on the first remaining edge
(take it and drop all intersecting edges / skip it), pruned by a fractional
packing bound.
"""

from __future__ import annotations

from typing import FrozenSet, List, Sequence, Set, Tuple

from ..errors import BudgetExceededError
from ..hypergraph.hypergraph import Hypergraph, HVertex, EdgeLabel
from ..hypergraph.construction import HypergraphBundle
from .base import register_measure


def greedy_independent_edge_set(hypergraph: Hypergraph) -> List[EdgeLabel]:
    """Greedy matching: scan edges, keep any that is disjoint from kept ones."""
    used: Set[HVertex] = set()
    kept: List[EdgeLabel] = []
    for edge in hypergraph.edges():
        if not (edge.vertices & used):
            kept.append(edge.label)
            used |= edge.vertices
    return kept


def _packing_upper_bound(edges: Sequence[Tuple[EdgeLabel, FrozenSet[HVertex]]]) -> int:
    """Cheap bound: a fractional-style cap via vertex multiplicities.

    Each vertex can serve at most one selected edge, so the packing size is
    at most ``floor(|distinct vertices| / k_min)``; combined with the edge
    count this prunes dense tails effectively.
    """
    if not edges:
        return 0
    distinct: Set[HVertex] = set()
    k_min = None
    for _, vertices in edges:
        distinct |= vertices
        size = len(vertices)
        if k_min is None or size < k_min:
            k_min = size
    assert k_min is not None and k_min >= 1
    return min(len(edges), len(distinct) // k_min)


def maximum_independent_edge_set(
    hypergraph: Hypergraph, budget: int = 2_000_000
) -> List[EdgeLabel]:
    """Exact maximum independent edge set (set packing) via branch & bound.

    Raises
    ------
    BudgetExceededError
        After expanding ``budget`` search nodes.
    """
    all_edges: List[Tuple[EdgeLabel, FrozenSet[HVertex]]] = [
        (edge.label, edge.vertices) for edge in hypergraph.edges()
    ]
    incumbent = greedy_independent_edge_set(hypergraph)
    nodes_expanded = 0

    def branch(
        index: int,
        remaining: List[Tuple[EdgeLabel, FrozenSet[HVertex]]],
        current: List[EdgeLabel],
    ) -> None:
        nonlocal incumbent, nodes_expanded
        nodes_expanded += 1
        if nodes_expanded > budget:
            raise BudgetExceededError(budget)
        if not remaining:
            if len(current) > len(incumbent):
                incumbent = list(current)
            return
        if len(current) + _packing_upper_bound(remaining) <= len(incumbent):
            return
        label, vertices = remaining[0]
        rest = remaining[1:]
        # Branch 1: take the first edge, drop everything intersecting it.
        compatible = [
            (other_label, other_vertices)
            for other_label, other_vertices in rest
            if not (other_vertices & vertices)
        ]
        branch(index + 1, compatible, current + [label])
        # Branch 2: skip it.
        branch(index + 1, rest, current)

    branch(0, all_edges, [])
    return incumbent


def mies_support_of(hypergraph: Hypergraph, budget: int = 2_000_000) -> int:
    """``sigma_MIES`` of a hypergraph: the maximum independent edge set size.

    For 2-uniform hypergraphs (single-edge patterns) an independent edge set
    is a graph matching, so the value is computed exactly in polynomial time
    with Edmonds' blossom algorithm instead of branch-and-bound.
    """
    if hypergraph.num_edges == 0:
        return 0
    if hypergraph.uniformity() == 2:
        from ..graph.matching import maximum_matching_size

        pairs = []
        for edge in hypergraph.edges():
            u, v = sorted(edge.vertices, key=repr)
            pairs.append((u, v))
        return maximum_matching_size(pairs)
    return len(maximum_independent_edge_set(hypergraph, budget=budget))


def is_independent_edge_set(
    hypergraph: Hypergraph, labels: Sequence[EdgeLabel]
) -> bool:
    """Check pairwise disjointness of the edges named by ``labels``."""
    used: Set[HVertex] = set()
    for label in labels:
        vertices = hypergraph.edge(label).vertices
        if vertices & used:
            return False
        used |= vertices
    return True


@register_measure(
    name="mies",
    display_name="MIES (max independent edge set)",
    anti_monotonic=True,
    complexity="NP-hard (B&B)",
    description=(
        "Maximum independent edge set of the instance hypergraph; equals "
        "MIS by Theorem 4.1."
    ),
)
def mies_support(bundle: HypergraphBundle) -> float:
    """``sigma_MIES(P, G)`` on the instance hypergraph."""
    return float(mies_support_of(bundle.instance_hg))


@register_measure(
    name="mies_occurrence",
    display_name="MIES on occurrences",
    anti_monotonic=True,
    complexity="NP-hard (B&B)",
    description="Maximum independent edge set of the occurrence hypergraph.",
)
def mies_occurrence_support(bundle: HypergraphBundle) -> float:
    """``sigma_MIES`` on the occurrence hypergraph (same value; duplicated
    edges from automorphic occurrences always intersect)."""
    return float(mies_support_of(bundle.occurrence_hg))
