"""Framework extensions: new measures the paper's conclusions call for.

The conclusions (Chapter 6) invite more support measures inside the
hypergraph framework, in particular "a support measure with super-linear
time complexity but ... smaller than the counts of MI" — i.e. something in
the gap between sigma_MVC and sigma_MI.  This module contributes the
**projected-MVC measure** (PMVC), constructed entirely from the paper's own
ingredients:

For a transitive node subset ``T`` of a connected subpattern, project the
occurrence hypergraph onto ``T``: edges become the image sets ``f_i(T)``.
Define

    sigma_PMVC(P, G) = min over T of  sigma_MVC( {f_i(T) : i} ).

Properties (each verified by the test suite):

* ``sigma_MVC <= sigma_PMVC`` — any cover of a projected hypergraph covers
  the full one, because ``f_i(T) ⊆ f_i(V_P)``.
* ``sigma_PMVC <= sigma_MI`` — the trivial cover of the projected
  hypergraph (one vertex per distinct image set) has size ``c(T)``.
* **anti-monotonic** — for a superpattern, every ``T`` survives
  (the subset family only grows) and each projected edge set shrinks
  set-wise (``f'_i(T) = f_i(T)`` for extensions ``f'_i``), so each
  projected MVC can only drop; minimizing over a larger family drops
  further.  This mirrors the paper's own proofs of Theorems 3.2 and 3.5.

Complexity: NP-hard in general (it contains MVC as the ``T = V_P`` case
when ``P`` is vertex-transitive) but far cheaper in practice because the
projected edges are small (``|T|`` vertices), and it prunes strictly
better than MI wherever instances overlap inside an orbit.
"""

from __future__ import annotations

from typing import FrozenSet, List, Optional, Sequence, Set, Tuple

from ..graph.automorphism import transitive_node_subsets
from ..graph.labeled_graph import Vertex
from ..graph.pattern import Pattern
from ..hypergraph.hypergraph import Hypergraph
from ..hypergraph.construction import HypergraphBundle
from ..isomorphism.matcher import Occurrence
from .base import register_measure
from .mvc import mvc_support_of


def projected_hypergraph(
    subset: FrozenSet[Vertex], occurrences: Sequence[Occurrence]
) -> Hypergraph:
    """The occurrence hypergraph projected onto node subset ``subset``.

    Distinct image sets become one edge each (duplicates impose the same
    covering constraint, so deduplication preserves the MVC value).
    """
    distinct: List[FrozenSet[Vertex]] = []
    seen: Set[FrozenSet[Vertex]] = set()
    for occurrence in occurrences:
        image = occurrence.image_of_set(subset)
        if image not in seen:
            seen.add(image)
            distinct.append(image)
    return Hypergraph.from_edge_sets(distinct, prefix="t")


def projected_mvc_support_from_occurrences(
    pattern: Pattern,
    occurrences: Sequence[Occurrence],
    max_subpattern_size: Optional[int] = None,
    budget: int = 2_000_000,
) -> int:
    """``sigma_PMVC(P, G)`` from an occurrence list (see module docstring)."""
    if not occurrences:
        return 0
    best: Optional[int] = None
    for subset in transitive_node_subsets(
        pattern, max_subpattern_size=max_subpattern_size
    ):
        hypergraph = projected_hypergraph(subset, occurrences)
        value = mvc_support_of(hypergraph, budget=budget)
        if best is None or value < best:
            best = value
        if best == 1:
            break  # cannot go lower for a non-empty occurrence set
    assert best is not None
    return best


def projected_mvc_breakdown(
    pattern: Pattern,
    occurrences: Sequence[Occurrence],
    max_subpattern_size: Optional[int] = None,
) -> List[Tuple[FrozenSet[Vertex], int, int]]:
    """Per-subset worksheet: ``(T, c(T), projected MVC)``.

    The MI column (``c(T)``) upper-bounds the PMVC column on every row,
    which is how the measure interleaves the two originals.
    """
    rows = []
    for subset in transitive_node_subsets(
        pattern, max_subpattern_size=max_subpattern_size
    ):
        hypergraph = projected_hypergraph(subset, occurrences)
        rows.append(
            (subset, hypergraph.num_edges, mvc_support_of(hypergraph))
        )
    return rows


@register_measure(
    name="pmvc",
    display_name="PMVC (projected min vertex cover)",
    anti_monotonic=True,
    complexity="NP-hard (small projections)",
    description=(
        "Minimum over transitive node subsets T of the vertex cover of the "
        "T-projected occurrence hypergraph; fills the MVC-MI gap "
        "(framework extension, paper Chapter 6)."
    ),
)
def pmvc_support(bundle: HypergraphBundle) -> float:
    """``sigma_PMVC(P, G)`` from a hypergraph bundle."""
    return float(
        projected_mvc_support_from_occurrences(bundle.pattern, bundle.occurrences)
    )