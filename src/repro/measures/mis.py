"""MIS — maximum-independent-set support on the overlap graph (Vanetik et al.;
Definitions 2.2.5–2.2.7).

``sigma_MIS(P, G)`` is the size of a maximum independent set in the
occurrence (or instance) overlap graph.  It is the intuitive "number of
independent appearances" but NP-hard.

The solver is a branch-and-bound maximum independent set with:

* degree-based branching (branch on a max-degree vertex: exclude / include);
* a greedy-clique-cover upper bound for pruning;
* a work budget.

The paper computes MIS on the **instance** overlap graph when relating it to
MIES (Theorem 4.1); on occurrence overlap graphs the value can differ only
when automorphic occurrences duplicate vertex sets — duplicated vertex sets
always overlap, so independent sets pick at most one per instance and the
two views agree.  Both entry points are provided.
"""

from __future__ import annotations

from typing import Dict, Set

from ..errors import BudgetExceededError
from ..hypergraph.construction import HypergraphBundle
from ..hypergraph.overlap import (
    OverlapGraph,
    instance_overlap_graph,
    occurrence_overlap_graph,
)
from .base import register_measure


def greedy_independent_set(graph: OverlapGraph) -> Set[int]:
    """Min-degree greedy independent set (lower bound / incumbent seed)."""
    adjacency = {node: set(neighbors) for node, neighbors in graph.adjacency.items()}
    alive = set(graph.nodes)
    independent: Set[int] = set()
    while alive:
        node = min(alive, key=lambda n: (len(adjacency[n] & alive), n))
        independent.add(node)
        alive.discard(node)
        alive -= adjacency[node]
    return independent


def clique_cover_upper_bound(adjacency: Dict[int, Set[int]], alive: Set[int]) -> int:
    """Greedy clique cover of the live subgraph; its size upper-bounds MIS.

    An independent set takes at most one vertex per clique.
    """
    remaining = set(alive)
    cliques = 0
    while remaining:
        seed = min(remaining)
        clique = {seed}
        candidates = adjacency[seed] & remaining
        while candidates:
            extension = min(candidates)
            clique.add(extension)
            candidates &= adjacency[extension]
        remaining -= clique
        cliques += 1
    return cliques


def maximum_independent_set(
    graph: OverlapGraph, budget: int = 2_000_000
) -> Set[int]:
    """Exact maximum independent set of an overlap graph (branch & bound).

    Raises
    ------
    BudgetExceededError
        After expanding ``budget`` search nodes.
    """
    adjacency = {node: set(neighbors) for node, neighbors in graph.adjacency.items()}
    incumbent = greedy_independent_set(graph)
    nodes_expanded = 0

    def branch(alive: Set[int], current: Set[int]) -> None:
        nonlocal incumbent, nodes_expanded
        nodes_expanded += 1
        if nodes_expanded > budget:
            raise BudgetExceededError(budget)
        if not alive:
            if len(current) > len(incumbent):
                incumbent = set(current)
            return
        if len(current) + clique_cover_upper_bound(adjacency, alive) <= len(incumbent):
            return
        # Isolated live vertices always join the independent set.
        isolated = {n for n in alive if not (adjacency[n] & alive)}
        if isolated:
            branch(alive - isolated, current | isolated)
            return
        pivot = max(alive, key=lambda n: (len(adjacency[n] & alive), -n))
        # Branch 1: include the pivot (drop its neighborhood).
        branch(alive - {pivot} - adjacency[pivot], current | {pivot})
        # Branch 2: exclude the pivot.
        branch(alive - {pivot}, current)

    branch(set(graph.nodes), set())
    return incumbent


def mis_support_of(graph: OverlapGraph, budget: int = 2_000_000) -> int:
    """``sigma_MIS`` of an overlap graph."""
    return len(maximum_independent_set(graph, budget=budget))


@register_measure(
    name="mis",
    display_name="MIS (max independent set)",
    anti_monotonic=True,
    complexity="NP-hard (B&B)",
    description=(
        "Maximum independent set of the instance overlap graph "
        "(Vanetik et al.)."
    ),
)
def mis_support(bundle: HypergraphBundle) -> float:
    """``sigma_MIS(P, G)`` on the instance overlap graph."""
    graph = instance_overlap_graph(bundle.instances)
    return float(mis_support_of(graph))


@register_measure(
    name="mis_occurrence",
    display_name="MIS on occurrences",
    anti_monotonic=True,
    complexity="NP-hard (B&B)",
    description="Maximum independent set of the occurrence overlap graph.",
)
def mis_occurrence_support(bundle: HypergraphBundle) -> float:
    """``sigma_MIS`` on the occurrence overlap graph (equal value; see module docstring)."""
    graph = occurrence_overlap_graph(bundle.pattern, bundle.occurrences, kind="simple")
    return float(mis_support_of(graph))


@register_measure(
    name="mis_structural",
    display_name="MIS under structural overlap",
    anti_monotonic=False,
    complexity="NP-hard (B&B)",
    description=(
        "MIS on the sparser overlap graph built from structural overlap "
        "(Section 4.5 variant)."
    ),
)
def mis_structural_support(bundle: HypergraphBundle) -> float:
    """MIS where only structurally-overlapping occurrences conflict."""
    graph = occurrence_overlap_graph(
        bundle.pattern, bundle.occurrences, kind="structural"
    )
    return float(mis_support_of(graph))


@register_measure(
    name="mis_harmful",
    display_name="MIS under harmful overlap",
    anti_monotonic=False,
    complexity="NP-hard (B&B)",
    description=(
        "MIS on the sparser overlap graph built from harmful overlap "
        "(Fiedler & Borgelt variant)."
    ),
)
def mis_harmful_support(bundle: HypergraphBundle) -> float:
    """MIS where only harmfully-overlapping occurrences conflict."""
    graph = occurrence_overlap_graph(bundle.pattern, bundle.occurrences, kind="harmful")
    return float(mis_support_of(graph))
