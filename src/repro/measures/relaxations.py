"""Polynomial-time LP relaxations nu_MVC and nu_MIES (Section 4.3).

Relaxing the 0/1 conditions of the vertex-cover ILP (Eq. 4.1) and the
independent-edge-set ILP (Eq. 4.2) gives two LPs solvable in polynomial
time.  By LP duality (Theorem 4.6):

    sigma_MIES <= nu_MIES = nu_MVC <= sigma_MVC

Both relaxed measures are anti-monotonic (Theorems 4.3-4.4).  The test
suite verifies the duality equality on every example with both the scipy
and pure-simplex backends.
"""

from __future__ import annotations

from typing import Dict, Tuple

from ..hypergraph.hypergraph import EdgeLabel, Hypergraph, HVertex
from ..hypergraph.construction import HypergraphBundle
from ..lp.model import LinearProgram, solve
from .base import register_measure
from .mvc import lp_relaxed_cover


def lp_mvc_support_of(hypergraph: Hypergraph, backend: str = "auto") -> float:
    """``nu_MVC`` — the fractional minimum vertex cover (Definition 4.3.1)."""
    if hypergraph.num_edges == 0:
        return 0.0
    value, _ = lp_relaxed_cover(hypergraph, backend=backend)
    return value


def lp_mies_support_of(hypergraph: Hypergraph, backend: str = "auto") -> float:
    """``nu_MIES`` — the fractional maximum independent edge set
    (Definition 4.3.2).

    One variable ``y(e)`` per hyperedge; one constraint per hypergraph
    vertex ``v``: the edges containing ``v`` (the dual edge ``X_v``) carry
    total weight at most 1.
    """
    if hypergraph.num_edges == 0:
        return 0.0
    program = LinearProgram(sense="max")
    names: Dict[EdgeLabel, str] = {}
    for i, edge in enumerate(hypergraph.edges()):
        names[edge.label] = f"y{i}"
        program.add_variable(names[edge.label], objective=1.0, lower=0.0, upper=1.0)
    for vertex in hypergraph.vertices():
        incident = hypergraph.edges_containing(vertex)
        program.add_le_constraint(
            {names[edge.label]: 1.0 for edge in incident}, 1.0
        )
    solution = solve(program, backend=backend)
    return solution.value


def fractional_solutions(
    hypergraph: Hypergraph, backend: str = "auto"
) -> Tuple[Dict[HVertex, float], Dict[EdgeLabel, float]]:
    """Both fractional optima: the cover ``x(v)`` and the packing ``y(e)``.

    Useful for inspecting complementary slackness in examples.
    """
    _, cover = lp_relaxed_cover(hypergraph, backend=backend)
    program = LinearProgram(sense="max")
    names: Dict[EdgeLabel, str] = {}
    for i, edge in enumerate(hypergraph.edges()):
        names[edge.label] = f"y{i}"
        program.add_variable(names[edge.label], objective=1.0, lower=0.0, upper=1.0)
    for vertex in hypergraph.vertices():
        incident = hypergraph.edges_containing(vertex)
        program.add_le_constraint({names[edge.label]: 1.0 for edge in incident}, 1.0)
    solution = solve(program, backend=backend)
    packing = {edge.label: solution[names[edge.label]] for edge in hypergraph.edges()}
    return cover, packing


@register_measure(
    name="lp_mvc",
    display_name="nu_MVC (LP-relaxed cover)",
    anti_monotonic=True,
    complexity="LP (polynomial)",
    description="Fractional minimum vertex cover of the occurrence hypergraph (Def. 4.3.1).",
)
def lp_mvc_support(bundle: HypergraphBundle) -> float:
    """``nu_MVC(P, G)`` on the occurrence hypergraph."""
    return lp_mvc_support_of(bundle.occurrence_hg)


@register_measure(
    name="lp_mies",
    display_name="nu_MIES (LP-relaxed packing)",
    anti_monotonic=True,
    complexity="LP (polynomial)",
    description="Fractional maximum independent edge set of the occurrence hypergraph (Def. 4.3.2).",
)
def lp_mies_support(bundle: HypergraphBundle) -> float:
    """``nu_MIES(P, G)`` on the occurrence hypergraph (= nu_MVC by duality)."""
    return lp_mies_support_of(bundle.occurrence_hg)
