"""Common infrastructure for support measures (Definition 2.2.1).

A support measure maps a (pattern, data graph) pair to a non-negative
number.  Every measure in this package is exposed two ways:

* a plain function operating on a pre-built
  :class:`~repro.hypergraph.construction.HypergraphBundle` (cheap to call
  repeatedly — the expensive occurrence enumeration is shared);
* through the registry / :func:`compute_support` convenience entry point,
  which builds the bundle for you.

The registry also records whether each measure is anti-monotonic and its
computational complexity class, which the analysis and benchmark layers use
for reporting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from ..errors import MeasureError
from ..graph.labeled_graph import LabeledGraph
from ..graph.pattern import Pattern
from ..hypergraph.construction import HypergraphBundle


@dataclass(frozen=True)
class MeasureInfo:
    """Metadata describing a registered support measure."""

    name: str
    display_name: str
    anti_monotonic: bool
    complexity: str
    description: str
    compute: Callable[[HypergraphBundle], float]


_REGISTRY: Dict[str, MeasureInfo] = {}


def register_measure(
    name: str,
    display_name: str,
    anti_monotonic: bool,
    complexity: str,
    description: str,
) -> Callable[
    [Callable[[HypergraphBundle], float]], Callable[[HypergraphBundle], float]
]:
    """Decorator registering a bundle-based measure function under ``name``."""

    def decorator(func: Callable[[HypergraphBundle], float]):
        if name in _REGISTRY:
            raise MeasureError(f"measure {name!r} registered twice")
        _REGISTRY[name] = MeasureInfo(
            name=name,
            display_name=display_name,
            anti_monotonic=anti_monotonic,
            complexity=complexity,
            description=description,
            compute=func,
        )
        return func

    return decorator


def available_measures() -> List[str]:
    """Names of all registered measures, deterministically ordered."""
    _ensure_loaded()
    return sorted(_REGISTRY)


def measure_info(name: str) -> MeasureInfo:
    """Metadata for one measure."""
    _ensure_loaded()
    if name not in _REGISTRY:
        raise MeasureError(
            f"unknown measure {name!r}; available: {', '.join(sorted(_REGISTRY))}"
        )
    return _REGISTRY[name]


def compute_support(
    name: str,
    pattern: Pattern,
    data: LabeledGraph,
    bundle: Optional[HypergraphBundle] = None,
) -> float:
    """Compute measure ``name`` for ``pattern`` in ``data``.

    Pass a pre-built ``bundle`` to amortize occurrence enumeration across
    several measures for the same pair.
    """
    info = measure_info(name)
    if bundle is None:
        bundle = HypergraphBundle.build(pattern, data)
    return info.compute(bundle)


def _ensure_loaded() -> None:
    """Import all measure modules so their registrations run."""
    from . import (  # noqa: F401
        counts,
        extensions,
        mcp,
        mi,
        mies,
        mis,
        mni,
        mvc,
        relaxations,
    )
