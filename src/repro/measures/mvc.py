"""MVC — minimum-vertex-cover support (Section 3.3).

``sigma_MVC(P, G)`` is the size of a minimum vertex cover of the occurrence
(or instance) hypergraph.  It is anti-monotonic (Theorem 3.5), bounded by
MI (Theorem 3.6), and NP-hard in general; on a k-uniform hypergraph the
greedy matching algorithm gives a k-approximation, and the LP relaxation
rounds to a k-approximation as well (Section 4.3).

Three solvers:

* :func:`minimum_vertex_cover` — exact branch-and-bound with a matching
  lower bound and greedy upper bound (budget-guarded);
* :func:`greedy_vertex_cover` — the classic maximal-matching k-approximation;
* :func:`lp_rounded_vertex_cover` — solve the LP relaxation and keep every
  vertex with ``x(v) >= 1/k``.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from ..errors import BudgetExceededError, LPError
from ..hypergraph.hypergraph import Hypergraph, HVertex
from ..hypergraph.construction import HypergraphBundle
from ..lp.model import LinearProgram, solve
from .base import register_measure


def _edge_sets(hypergraph: Hypergraph) -> List[FrozenSet[HVertex]]:
    return [edge.vertices for edge in hypergraph.edges()]


def greedy_vertex_cover(hypergraph: Hypergraph) -> Set[HVertex]:
    """Maximal-matching k-approximation (factor ``k`` on k-uniform input).

    Repeatedly pick an uncovered edge and add *all* its vertices.  Any
    optimal cover contains at least one vertex of each picked (pairwise
    disjoint) edge, so the result is at most ``k * OPT``.
    """
    cover: Set[HVertex] = set()
    for edge in hypergraph.edges():
        if not (edge.vertices & cover):
            cover |= edge.vertices
    return cover


def matching_lower_bound(edges: Sequence[FrozenSet[HVertex]]) -> int:
    """A greedy maximal set of pairwise-disjoint edges; its size lower-bounds
    the vertex cover (each disjoint edge needs its own cover vertex)."""
    used: Set[HVertex] = set()
    count = 0
    for edge in edges:
        if not (edge & used):
            used |= edge
            count += 1
    return count


def _graph_vertex_cover(
    edges: List[FrozenSet[HVertex]], budget: int
) -> Set[HVertex]:
    """Exact vertex cover for the 2-uniform (ordinary graph) case.

    Pipeline: Nemhauser–Trotter LP persistency (variables at 1 are in some
    optimal cover, variables at 0 are not), then branch-and-bound on the
    half-integral core with vertex branching (take ``v`` / take ``N(v)``)
    and pendant reduction.
    """
    adjacency: Dict[HVertex, Set[HVertex]] = {}
    for edge in edges:
        u, v = tuple(edge)
        adjacency.setdefault(u, set()).add(v)
        adjacency.setdefault(v, set()).add(u)

    forced: Set[HVertex] = set()
    core = set(adjacency)
    try:
        program = LinearProgram(sense="min")
        names = {vtx: f"x{i}" for i, vtx in enumerate(sorted(adjacency, key=repr))}
        for vtx in names:
            program.add_variable(names[vtx], objective=1.0)
        for edge in edges:
            u, v = tuple(edge)
            program.add_ge_constraint({names[u]: 1.0, names[v]: 1.0}, 1.0)
        solution = solve(program)
        forced = {vtx for vtx in names if solution[names[vtx]] > 0.5 + 1e-6}
        excluded = {vtx for vtx in names if solution[names[vtx]] < 0.5 - 1e-6}
        core = set(adjacency) - forced - excluded
    except LPError:
        pass  # fall through to plain branch-and-bound on everything

    core_adjacency = {
        v: {w for w in adjacency[v] if w in core} for v in core
    }

    nodes_expanded = 0
    best: Optional[Set[HVertex]] = None

    def branch(live: Dict[HVertex, Set[HVertex]], current: Set[HVertex]) -> None:
        nonlocal best, nodes_expanded
        nodes_expanded += 1
        if nodes_expanded > budget:
            raise BudgetExceededError(budget)
        # Reductions: drop isolated vertices; resolve pendants.
        live = {v: set(nbrs) for v, nbrs in live.items() if nbrs}
        changed = True
        while changed:
            changed = False
            for v in list(live):
                if v not in live:
                    continue
                nbrs = live[v]
                if not nbrs:
                    del live[v]
                    changed = True
                elif len(nbrs) == 1:
                    # Pendant: taking the neighbor is always at least as good.
                    (w,) = tuple(nbrs)
                    current = current | {w}
                    for x in live.get(w, set()):
                        live[x].discard(w)
                    live.pop(w, None)
                    live.pop(v, None)
                    changed = True
        if not live:
            if best is None or len(current) < len(best):
                best = set(current)
            return
        # Matching lower bound on the remaining graph.
        seen: Set[HVertex] = set()
        matching = 0
        for v in sorted(live, key=repr):
            if v in seen:
                continue
            for w in live[v]:
                if w not in seen:
                    seen.add(v)
                    seen.add(w)
                    matching += 1
                    break
        if best is not None and len(current) + matching >= len(best):
            return
        pivot = max(live, key=lambda v: (len(live[v]), repr(v)))
        neighbors = set(live[pivot])
        # Branch 1: pivot joins the cover.
        reduced = {
            v: (nbrs - {pivot}) for v, nbrs in live.items() if v != pivot
        }
        branch(reduced, current | {pivot})
        # Branch 2: pivot stays out, so all its neighbors join.
        removed = neighbors | {pivot}
        reduced = {
            v: (nbrs - removed) for v, nbrs in live.items() if v not in removed
        }
        branch(reduced, current | neighbors)

    branch(core_adjacency, set())
    assert best is not None
    return forced | best


def minimum_vertex_cover(
    hypergraph: Hypergraph, budget: int = 2_000_000
) -> Set[HVertex]:
    """Exact minimum vertex cover of a hypergraph via branch-and-bound.

    2-uniform hypergraphs (the single-edge patterns every mining run seeds
    with) go through a dedicated graph solver with Nemhauser–Trotter LP
    preprocessing and vertex branching.  General hypergraphs branch on an
    uncovered edge (fewest vertices first) and try including each of its
    vertices; at least one must be in any cover, so the search is complete.
    Pruning: ``|current| + matching_lower_bound`` against the incumbent.

    Raises
    ------
    BudgetExceededError
        After expanding ``budget`` search nodes.
    """
    all_edges = _edge_sets(hypergraph)
    if not all_edges:
        return set()
    if all(len(edge) == 2 for edge in all_edges):
        return _graph_vertex_cover(all_edges, budget)

    incumbent = set(greedy_vertex_cover(hypergraph))
    nodes_expanded = 0

    def branch(remaining: List[FrozenSet[HVertex]], current: Set[HVertex]) -> None:
        nonlocal incumbent, nodes_expanded
        nodes_expanded += 1
        if nodes_expanded > budget:
            raise BudgetExceededError(budget)
        uncovered = [edge for edge in remaining if not (edge & current)]
        if not uncovered:
            if len(current) < len(incumbent):
                incumbent = set(current)
            return
        if len(current) + matching_lower_bound(uncovered) >= len(incumbent):
            return
        # Branch on the smallest uncovered edge: fewest children.
        pivot = min(uncovered, key=lambda edge: (len(edge), sorted(map(repr, edge))))
        for vertex in sorted(pivot, key=repr):
            branch(uncovered, current | {vertex})

    branch(all_edges, set())
    return incumbent


def mvc_support_of(hypergraph: Hypergraph, budget: int = 2_000_000) -> int:
    """``sigma_MVC`` of a hypergraph: the minimum vertex cover size."""
    return len(minimum_vertex_cover(hypergraph, budget=budget))


def lp_relaxed_cover(
    hypergraph: Hypergraph, backend: str = "auto"
) -> Tuple[float, Dict[HVertex, float]]:
    """Solve the LP relaxation of vertex cover (Eq. 4.3 relaxed).

    Returns ``(nu_MVC, fractional assignment)``.
    """
    program = LinearProgram(sense="min")
    names: Dict[HVertex, str] = {}
    for i, vertex in enumerate(hypergraph.vertices()):
        names[vertex] = f"x{i}"
        program.add_variable(names[vertex], objective=1.0, lower=0.0, upper=1.0)
    for edge in hypergraph.edges():
        program.add_ge_constraint({names[v]: 1.0 for v in edge.vertices}, 1.0)
    solution = solve(program, backend=backend)
    assignment = {vertex: solution[names[vertex]] for vertex in hypergraph.vertices()}
    return solution.value, assignment


def lp_rounded_vertex_cover(
    hypergraph: Hypergraph, backend: str = "auto"
) -> Set[HVertex]:
    """Round the LP relaxation: keep vertices with ``x(v) >= 1/k``.

    Every edge has some vertex with ``x >= 1/k`` (the k values sum to at
    least 1), so the rounded set is a cover; its size is at most
    ``k * nu_MVC <= k * sigma_MVC``.
    """
    if hypergraph.num_edges == 0:
        return set()
    k = max(len(edge) for edge in hypergraph.edges())
    _, assignment = lp_relaxed_cover(hypergraph, backend=backend)
    threshold = 1.0 / k - 1e-9
    return {vertex for vertex, x in assignment.items() if x >= threshold}


def is_vertex_cover(hypergraph: Hypergraph, cover: Set[HVertex]) -> bool:
    """Check the covering property (every edge intersects ``cover``)."""
    return all(edge.vertices & cover for edge in hypergraph.edges())


@register_measure(
    name="mvc",
    display_name="MVC (minimum vertex cover)",
    anti_monotonic=True,
    complexity="NP-hard (B&B)",
    description="Minimum vertex cover of the occurrence hypergraph (this paper, Section 3.3).",
)
def mvc_support(bundle: HypergraphBundle) -> float:
    """``sigma_MVC(P, G)`` on the occurrence hypergraph."""
    return float(mvc_support_of(bundle.occurrence_hg))


@register_measure(
    name="mvc_greedy",
    display_name="MVC greedy k-approx",
    anti_monotonic=False,
    complexity="O(m k)",
    description="Maximal-matching k-approximation of MVC (upper bound, not a measure).",
)
def mvc_greedy_support(bundle: HypergraphBundle) -> float:
    """Size of the greedy k-approximate vertex cover."""
    return float(len(greedy_vertex_cover(bundle.occurrence_hg)))
