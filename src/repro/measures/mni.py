"""MNI — minimum-image-based support (Bringmann & Nijssen; Definition 2.2.8).

For each pattern node ``v``, count its distinct images across all
occurrences; MNI is the minimum such count.  It is anti-monotonic and
linear-time in the number of occurrences, but ignores the pattern's
topology entirely, which is why it can over-count arbitrarily (Fig. 2:
the triangle has MNI 3 but a single instance).

The parameterized variant ``sigma_MNI(P, G, k)`` (Definition 2.2.9) counts
distinct *image sets* of every connected k-node subset instead of single
nodes.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Sequence, Set

from ..errors import MeasureError
from ..graph.labeled_graph import Vertex
from ..graph.pattern import Pattern
from ..hypergraph.construction import HypergraphBundle
from ..isomorphism.matcher import Occurrence
from .base import register_measure


def mni_support_from_occurrences(
    pattern: Pattern, occurrences: Sequence[Occurrence]
) -> int:
    """``sigma_MNI`` computed directly from an occurrence list.

    Single pass over occurrences: maintain one image set per pattern node.
    """
    if not occurrences:
        return 0
    images: Dict[Vertex, Set[Vertex]] = {node: set() for node in pattern.nodes()}
    for occurrence in occurrences:
        for node, vertex in occurrence.mapping_items:
            images[node].add(vertex)
    return min(len(image_set) for image_set in images.values())


def node_image_counts(
    pattern: Pattern, occurrences: Sequence[Occurrence]
) -> Dict[Vertex, int]:
    """Distinct-image count per pattern node (the '# of images' row of Fig. 2)."""
    images: Dict[Vertex, Set[Vertex]] = {node: set() for node in pattern.nodes()}
    for occurrence in occurrences:
        for node, vertex in occurrence.mapping_items:
            images[node].add(vertex)
    return {node: len(image_set) for node, image_set in images.items()}


def mni_k_support_from_occurrences(
    pattern: Pattern, occurrences: Sequence[Occurrence], k: int
) -> int:
    """``sigma_MNI(P, G, k)`` (Definition 2.2.9).

    Minimum distinct-image-set count over all *connected* node subsets of
    size exactly ``k``.  ``k=1`` coincides with plain MNI.
    """
    if k < 1:
        raise MeasureError(f"k must be >= 1, got {k}")
    if k > pattern.num_nodes:
        raise MeasureError(
            f"k={k} exceeds the pattern's node count {pattern.num_nodes}"
        )
    if not occurrences:
        return 0
    subsets = [
        subset
        for subset in pattern.connected_node_subsets(max_size=k)
        if len(subset) == k
    ]
    if not subsets:
        raise MeasureError(f"pattern has no connected node subset of size {k}")
    best = None
    for subset in subsets:
        image_sets: Set[FrozenSet[Vertex]] = {
            occurrence.image_of_set(subset) for occurrence in occurrences
        }
        count = len(image_sets)
        if best is None or count < best:
            best = count
    assert best is not None
    return best


@register_measure(
    name="mni",
    display_name="MNI (minimum image)",
    anti_monotonic=True,
    complexity="O(m)",
    description="Minimum distinct-image count over pattern nodes (Bringmann & Nijssen).",
)
def mni_support(bundle: HypergraphBundle) -> float:
    """``sigma_MNI(P, G)`` from a hypergraph bundle."""
    return float(mni_support_from_occurrences(bundle.pattern, bundle.occurrences))
