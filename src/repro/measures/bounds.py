"""The bounding chain of Section 4.4 and a machine-checkable verifier.

    sigma_MIS = sigma_MIES <= nu_MIES = nu_MVC <= sigma_MVC <= sigma_MI <= sigma_MNI

(Theorems 3.4, 3.6, 4.1, 4.5, 4.6.)  :func:`verify_bounding_chain` computes
every measure for one (pattern, graph) pair and checks all the inequalities
and equalities, returning a structured report — this is used by the
property-based tests (the chain must hold on *every* random graph) and by
the tab1 benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..graph.labeled_graph import LabeledGraph
from ..graph.pattern import Pattern
from ..hypergraph.construction import HypergraphBundle
from ..hypergraph.overlap import instance_overlap_graph
from .mi import mi_support_from_occurrences
from .mni import mni_support_from_occurrences
from .mvc import mvc_support_of
from .mis import mis_support_of
from .mies import mies_support_of
from .mcp import mcp_support_of
from .relaxations import lp_mies_support_of, lp_mvc_support_of

_TOLERANCE = 1e-6

#: Human-readable rendering of the chain, used in reports.
CHAIN_TEXT = (
    "sigma_MIS = sigma_MIES <= nu_MIES = nu_MVC <= sigma_MVC "
    "<= sigma_MI <= sigma_MNI"
)


@dataclass
class ChainReport:
    """All chain measures for one (pattern, graph) pair plus check results."""

    values: Dict[str, float]
    violations: List[str] = field(default_factory=list)

    @property
    def holds(self) -> bool:
        return not self.violations

    def as_rows(self) -> List[Tuple[str, float]]:
        """Measures in chain order for tabular display."""
        order = ["mis", "mies", "lp_mies", "lp_mvc", "mvc", "mi", "mni", "mcp"]
        return [(name, self.values[name]) for name in order if name in self.values]


def chain_values(
    pattern: Pattern,
    data: LabeledGraph,
    bundle: Optional[HypergraphBundle] = None,
    include_mcp: bool = True,
) -> Dict[str, float]:
    """Compute every measure appearing in the bounding chain.

    One shared bundle; NP-hard solvers run with default budgets.
    """
    if bundle is None:
        bundle = HypergraphBundle.build(pattern, data)
    values: Dict[str, float] = {
        "occurrences": float(bundle.num_occurrences),
        "instances": float(bundle.num_instances),
        "mni": float(mni_support_from_occurrences(pattern, bundle.occurrences)),
        "mi": float(mi_support_from_occurrences(pattern, bundle.occurrences)),
        "mvc": float(mvc_support_of(bundle.occurrence_hg)),
        "mies": float(mies_support_of(bundle.instance_hg)),
        "lp_mvc": lp_mvc_support_of(bundle.occurrence_hg),
        "lp_mies": lp_mies_support_of(bundle.occurrence_hg),
    }
    if bundle.instance_hg.uniformity() == 2 and bundle.num_instances > 60:
        # Large one-edge workload: sigma_MIS = sigma_MIES (Theorem 4.1) and
        # MIES is solved polynomially by blossom matching — skip the B&B.
        values["mis"] = values["mies"]
        if include_mcp:
            overlap = instance_overlap_graph(bundle.instances)
            values["mcp"] = float(mcp_support_of(overlap))
    else:
        overlap = instance_overlap_graph(bundle.instances)
        values["mis"] = float(mis_support_of(overlap))
        if include_mcp:
            values["mcp"] = float(mcp_support_of(overlap))
    return values


def verify_bounding_chain(
    pattern: Pattern,
    data: LabeledGraph,
    bundle: Optional[HypergraphBundle] = None,
    include_mcp: bool = True,
) -> ChainReport:
    """Check every (in)equality of the Section 4.4 chain.

    Checked relations:

    * ``sigma_MIS == sigma_MIES``                      (Theorem 4.1)
    * ``sigma_MIES <= nu_MIES + tol``                  (Theorem 4.6)
    * ``nu_MIES == nu_MVC``  (LP duality)              (Theorem 4.6)
    * ``nu_MVC <= sigma_MVC + tol``                    (Theorem 4.6)
    * ``sigma_MVC <= sigma_MI``                        (Theorem 3.6)
    * ``sigma_MI <= sigma_MNI``                        (Theorem 3.4)
    * ``sigma_MIS <= sigma_MCP``  (clique partitions)  (Section 5)
    * ``sigma_MNI <= occurrences``; ``sigma_MIS <= instances``
    """
    values = chain_values(pattern, data, bundle=bundle, include_mcp=include_mcp)
    violations: List[str] = []

    def check(condition: bool, text: str) -> None:
        if not condition:
            violations.append(text)

    check(
        abs(values["mis"] - values["mies"]) < _TOLERANCE,
        f"sigma_MIS ({values['mis']}) != sigma_MIES ({values['mies']})",
    )
    check(
        values["mies"] <= values["lp_mies"] + _TOLERANCE,
        f"sigma_MIES ({values['mies']}) > nu_MIES ({values['lp_mies']})",
    )
    check(
        abs(values["lp_mies"] - values["lp_mvc"]) < 1e-4,
        f"nu_MIES ({values['lp_mies']}) != nu_MVC ({values['lp_mvc']}) — duality",
    )
    check(
        values["lp_mvc"] <= values["mvc"] + _TOLERANCE,
        f"nu_MVC ({values['lp_mvc']}) > sigma_MVC ({values['mvc']})",
    )
    check(
        values["mvc"] <= values["mi"] + _TOLERANCE,
        f"sigma_MVC ({values['mvc']}) > sigma_MI ({values['mi']})",
    )
    check(
        values["mi"] <= values["mni"] + _TOLERANCE,
        f"sigma_MI ({values['mi']}) > sigma_MNI ({values['mni']})",
    )
    check(
        values["mni"] <= values["occurrences"] + _TOLERANCE,
        f"sigma_MNI ({values['mni']}) > occurrences ({values['occurrences']})",
    )
    check(
        values["mis"] <= values["instances"] + _TOLERANCE,
        f"sigma_MIS ({values['mis']}) > instances ({values['instances']})",
    )
    if "mcp" in values:
        check(
            values["mis"] <= values["mcp"] + _TOLERANCE,
            f"sigma_MIS ({values['mis']}) > sigma_MCP ({values['mcp']})",
        )
    return ChainReport(values=values, violations=violations)
