"""Lazy (threshold-bounded) MNI evaluation — the GraMi search strategy.

Plain MNI needs the full occurrence list, whose size can be exponential in
the pattern.  Mining only ever asks the *decision* question "is the
support at least t?", and MNI decomposes per pattern node, so GraMi
(Elseidy et al., the paper's reference [4]) answers it lazily:

    for every pattern node v:
        confirm t distinct images of v (anchored searches, early exit);
        if fewer exist, the pattern is infrequent — stop immediately.

This module provides the decision procedure (:func:`mni_at_least`), the
capped value (:func:`lazy_mni_support`), and hooks used by the miner's
``lazy=True`` mode.  Both agree exactly with eager MNI (verified by the
test suite on random graphs).
"""

from __future__ import annotations

from typing import Optional

from ..errors import MeasureError
from ..graph.labeled_graph import LabeledGraph
from ..graph.pattern import Pattern
from ..index.graph_index import IndexArg, resolve_index
from ..isomorphism.anchored import valid_images


def mni_at_least(
    pattern: Pattern, data: LabeledGraph, threshold: int, index: IndexArg = None
) -> bool:
    """Decide ``sigma_MNI(P, G) >= threshold`` without full enumeration.

    Nodes are visited rarest-label-first so infrequent patterns fail fast.
    Anchored searches are seeded from the graph index's inverted lists
    unless ``index=False`` requests the brute-force reference path.
    """
    if threshold < 1:
        raise MeasureError("threshold must be >= 1")
    resolved = resolve_index(data, index)
    histogram = (
        resolved.label_histogram() if resolved is not None else data.label_histogram()
    )
    nodes = sorted(
        pattern.nodes(),
        key=lambda node: (histogram.get(pattern.label_of(node), 0), repr(node)),
    )
    search_index: IndexArg = resolved if resolved is not None else False
    for node in nodes:
        # A node cannot have more images than label-compatible vertices.
        if histogram.get(pattern.label_of(node), 0) < threshold:
            return False
        images = valid_images(
            pattern, data, node, stop_after=threshold, index=search_index
        )
        if len(images) < threshold:
            return False
    return True


def lazy_mni_support(
    pattern: Pattern,
    data: LabeledGraph,
    cap: Optional[int] = None,
    index: IndexArg = None,
) -> int:
    """``min(sigma_MNI(P, G), cap)`` via per-node early-terminated scans.

    With ``cap=None`` this computes exact MNI (scanning all candidate
    images per node), still without materializing occurrences.
    """
    resolved = resolve_index(data, index)
    search_index: IndexArg = resolved if resolved is not None else False
    best: Optional[int] = None
    for node in pattern.nodes():
        stop_after = cap if best is None else min(cap or best, best)
        images = valid_images(
            pattern, data, node, stop_after=stop_after, index=search_index
        )
        count = len(images)
        if best is None or count < best:
            best = count
        if best == 0:
            return 0
    assert best is not None
    return best if cap is None else min(best, cap)
