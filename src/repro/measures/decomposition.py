"""Additive (component-decomposed) computation of the NP-hard measures.

The paper's conclusions list **additiveness** — computing a measure in a
parallel/divide-and-conquer manner — as a desirable future extension.  The
occurrence hypergraph makes this concrete: its connected components cannot
share cover vertices or packing edges, so

    sigma_MVC(H)  = sum over components C of sigma_MVC(C)
    sigma_MIES(H) = sum over components C of sigma_MIES(C)
    nu_MVC(H)     = sum over components C of nu_MVC(C)

and each component's subproblem is exponentially smaller than the whole.
:func:`hypergraph_components` computes the decomposition; the
``decomposed_*`` functions exploit it.  The test suite verifies equality
with the monolithic solvers on every example — this is also the ablation
benchmark ``tab7`` (bench_decomposition.py).
"""

from __future__ import annotations

from typing import Dict, List

from ..hypergraph.hypergraph import Hypergraph, HVertex
from .mies import mies_support_of
from .mvc import mvc_support_of
from .relaxations import lp_mvc_support_of


def hypergraph_components(hypergraph: Hypergraph) -> List[Hypergraph]:
    """Split a hypergraph into its connected components.

    Two edges are connected when they share a vertex; a component is a
    maximal connected edge set (with its incident vertices).  Isolated
    vertices cannot exist in our hypergraphs (every vertex comes from an
    edge), so the components partition both edges and vertices.
    """
    edges = hypergraph.edges()
    if not edges:
        return []
    # Union-find over edge indices, joined through shared vertices.
    parent = list(range(len(edges)))

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    def union(a: int, b: int) -> None:
        ra, rb = find(a), find(b)
        if ra != rb:
            parent[ra] = rb

    seen_vertex: Dict[HVertex, int] = {}
    for i, edge in enumerate(edges):
        for vertex in edge.vertices:
            if vertex in seen_vertex:
                union(i, seen_vertex[vertex])
            else:
                seen_vertex[vertex] = i

    groups: Dict[int, List[int]] = {}
    for i in range(len(edges)):
        groups.setdefault(find(i), []).append(i)

    components: List[Hypergraph] = []
    for root in sorted(groups):
        component = Hypergraph(name=f"{hypergraph.name}|c{len(components)}")
        for i in groups[root]:
            component.add_edge(edges[i].label, edges[i].vertices)
        components.append(component)
    return components


def decomposed_mvc_support(hypergraph: Hypergraph, budget: int = 2_000_000) -> int:
    """``sigma_MVC`` computed additively per connected component."""
    return sum(
        mvc_support_of(component, budget=budget)
        for component in hypergraph_components(hypergraph)
    )


def decomposed_mies_support(hypergraph: Hypergraph, budget: int = 2_000_000) -> int:
    """``sigma_MIES`` computed additively per connected component."""
    return sum(
        mies_support_of(component, budget=budget)
        for component in hypergraph_components(hypergraph)
    )


def decomposed_lp_mvc_support(hypergraph: Hypergraph, backend: str = "auto") -> float:
    """``nu_MVC`` computed additively per connected component."""
    return sum(
        lp_mvc_support_of(component, backend=backend)
        for component in hypergraph_components(hypergraph)
    )


def component_statistics(hypergraph: Hypergraph) -> Dict[str, float]:
    """Decomposition profile: how much smaller do the subproblems get?"""
    components = hypergraph_components(hypergraph)
    if not components:
        return {
            "components": 0,
            "largest_edges": 0,
            "mean_edges": 0.0,
            "reduction": 1.0,
        }
    sizes = sorted((c.num_edges for c in components), reverse=True)
    return {
        "components": len(components),
        "largest_edges": sizes[0],
        "mean_edges": sum(sizes) / len(sizes),
        # Fraction of the monolithic problem size the largest piece retains.
        "reduction": sizes[0] / hypergraph.num_edges,
    }
