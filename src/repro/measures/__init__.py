"""Support measures: MNI, MI, MVC, MIS, MIES, MCP, LP relaxations, bounds."""

from .base import (
    MeasureInfo,
    available_measures,
    compute_support,
    measure_info,
)
from .counts import instance_count, occurrence_count
from .mni import (
    mni_k_support_from_occurrences,
    mni_support,
    mni_support_from_occurrences,
    node_image_counts,
)
from .mi import (
    coarse_grained_image_count,
    mi_support,
    mi_support_breakdown,
    mi_support_from_occurrences,
)
from .mvc import (
    greedy_vertex_cover,
    is_vertex_cover,
    lp_relaxed_cover,
    lp_rounded_vertex_cover,
    minimum_vertex_cover,
    mvc_support,
    mvc_support_of,
)
from .mis import (
    greedy_independent_set,
    maximum_independent_set,
    mis_support,
    mis_support_of,
)
from .mies import (
    greedy_independent_edge_set,
    is_independent_edge_set,
    maximum_independent_edge_set,
    mies_support,
    mies_support_of,
)
from .mcp import (
    greedy_clique_partition,
    mcp_support,
    mcp_support_of,
    minimum_clique_partition,
)
from .relaxations import (
    fractional_solutions,
    lp_mies_support_of,
    lp_mvc_support_of,
)
from .bounds import CHAIN_TEXT, ChainReport, chain_values, verify_bounding_chain
from .lazy_mni import lazy_mni_support, mni_at_least
from .extensions import (
    projected_hypergraph,
    projected_mvc_breakdown,
    projected_mvc_support_from_occurrences,
)
from .decomposition import (
    component_statistics,
    decomposed_lp_mvc_support,
    decomposed_mies_support,
    decomposed_mvc_support,
    hypergraph_components,
)

__all__ = [
    "MeasureInfo",
    "available_measures",
    "compute_support",
    "measure_info",
    "instance_count",
    "occurrence_count",
    "mni_k_support_from_occurrences",
    "mni_support",
    "mni_support_from_occurrences",
    "node_image_counts",
    "coarse_grained_image_count",
    "mi_support",
    "mi_support_breakdown",
    "mi_support_from_occurrences",
    "greedy_vertex_cover",
    "is_vertex_cover",
    "lp_relaxed_cover",
    "lp_rounded_vertex_cover",
    "minimum_vertex_cover",
    "mvc_support",
    "mvc_support_of",
    "greedy_independent_set",
    "maximum_independent_set",
    "mis_support",
    "mis_support_of",
    "greedy_independent_edge_set",
    "is_independent_edge_set",
    "maximum_independent_edge_set",
    "mies_support",
    "mies_support_of",
    "greedy_clique_partition",
    "mcp_support",
    "mcp_support_of",
    "minimum_clique_partition",
    "fractional_solutions",
    "lp_mies_support_of",
    "lp_mvc_support_of",
    "CHAIN_TEXT",
    "ChainReport",
    "chain_values",
    "verify_bounding_chain",
    "component_statistics",
    "decomposed_lp_mvc_support",
    "decomposed_mies_support",
    "decomposed_mvc_support",
    "hypergraph_components",
    "projected_hypergraph",
    "projected_mvc_breakdown",
    "projected_mvc_support_from_occurrences",
    "lazy_mni_support",
    "mni_at_least",
]
