"""``StandingSpec`` + answer-change events: the standing-query vocabulary.

A *standing* query inverts ``mine-stream``: instead of re-deriving the
whole frequent set after every update batch, a client registers what it
watches once and receives only the incremental answer changes.  Two
kinds are supported:

* ``kind="pattern"`` — watch one concrete motif: events fire when its
  occurrence set changes or its support crosses ``min_support``;
* ``kind="threshold"`` — watch the whole frequent set of a mining
  question: events fire when any pattern enters or leaves the set, or a
  member's support/occurrence count changes.

:class:`StandingSpec` mirrors :class:`~repro.mining.spec.MiningSpec`:
frozen, validated once, canonical JSON doubling as the wire form and the
cache key, ``from_kwargs`` accepting the same CLI aliases.  The *answer*
of a standing query is a mapping ``certificate -> AnswerEntry`` and the
module's pure functions close the loop the equivalence suite pins:

    ``replay_answer(answer_at_V0, events(V0..V1]) == answer_at_V1``

Every event carries the full new entry (or nulls for a removal), so the
event stream reconstructs the answer diff between any two one-shot
mines at the bracketing versions exactly — byte for byte.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, fields, replace as _dataclass_replace
from typing import (
    Any,
    Dict,
    FrozenSet,
    List,
    Mapping,
    NamedTuple,
    Optional,
    Sequence,
    Tuple,
)

from ..errors import MiningError
from ..graph.canonical import canonical_certificate
from ..graph.labeled_graph import LabeledGraph
from ..graph.pattern import Pattern
from ..measures.base import measure_info
from .dynamic import pattern_footprint
from .results import MiningResult
from .spec import DEFAULT_SPEC, MiningSpec, _ALIASES

#: The standing-query kinds.
STANDING_KINDS = ("pattern", "threshold")

#: Typed answer-change events, in canonical (emission-priority) order.
EVENT_TYPES = (
    "became_frequent",
    "became_infrequent",
    "occurrences_gained",
    "occurrences_lost",
    "support_changed",
)

#: How events reach the client: pulled via ``poll_events`` or pushed as
#: server-initiated ``notify`` lines on the subscriber's connection.
DELIVERY_MODES = ("poll", "push")


def _id_sort_key(value: Any) -> Tuple[bool, str]:
    # Vertex ids may mix ints and strings; (is_str, str(v)) orders both.
    return (isinstance(value, str), str(value))


def _normalize_pattern(value: Any) -> Tuple[Tuple, Tuple]:
    """Canonicalize a pattern argument into nested (nodes, edges) tuples.

    Accepts a :class:`Pattern`, a ``{"nodes": ..., "edges": ...}`` JSON
    object, or a ``(nodes, edges)`` pair.  Nodes and edges are sorted so
    the same motif always serializes to the same canonical form.
    """
    if isinstance(value, Pattern):
        graph = value.graph
        nodes = [(v, graph.label_of(v)) for v in graph.vertices()]
        edges = list(graph.edges())
    elif isinstance(value, Mapping):
        nodes, edges = value.get("nodes"), value.get("edges")
    elif isinstance(value, (tuple, list)) and len(value) == 2:
        nodes, edges = value
    else:
        raise MiningError(
            "pattern must be a Pattern, a {'nodes': ..., 'edges': ...} "
            f"object, or a (nodes, edges) pair, got {type(value).__name__}"
        )
    if not isinstance(nodes, (tuple, list)) or not isinstance(edges, (tuple, list)):
        raise MiningError("pattern 'nodes' and 'edges' must be arrays")
    norm_nodes = []
    for item in nodes:
        if not isinstance(item, (tuple, list)) or len(item) != 2:
            raise MiningError(f"pattern node {item!r} must be a [id, label] pair")
        vid, label = item
        if not isinstance(vid, (int, str)) or isinstance(vid, bool):
            raise MiningError(f"pattern node id {vid!r} must be an int or string")
        norm_nodes.append((vid, label))
    norm_edges = []
    for item in edges:
        if not isinstance(item, (tuple, list)) or len(item) != 2:
            raise MiningError(f"pattern edge {item!r} must be a [u, v] pair")
        u, v = item
        norm_edges.append(tuple(sorted((u, v), key=_id_sort_key)))
    norm_nodes.sort(key=lambda it: _id_sort_key(it[0]))
    norm_edges.sort(key=lambda e: (_id_sort_key(e[0]), _id_sort_key(e[1])))
    return tuple(norm_nodes), tuple(norm_edges)


@dataclass(frozen=True)
class StandingSpec:
    """One validated, canonical description of a standing query.

    ``kind="pattern"`` watches the concrete motif in ``pattern``;
    ``kind="threshold"`` watches the frequent set of the derived
    :meth:`mining_spec` question.  ``events`` optionally restricts which
    event types are delivered (``None`` means all — required for exact
    answer reconstruction); ``delivery`` picks poll or push transport.
    """

    kind: str = "threshold"
    pattern: Optional[Tuple[Tuple, Tuple]] = None
    measure: str = DEFAULT_SPEC.measure
    min_support: float = DEFAULT_SPEC.min_support
    max_pattern_nodes: int = DEFAULT_SPEC.max_pattern_nodes
    max_pattern_edges: int = DEFAULT_SPEC.max_pattern_edges
    lazy: bool = DEFAULT_SPEC.lazy
    events: Optional[Tuple[str, ...]] = None
    delivery: str = "poll"

    def __post_init__(self) -> None:
        if self.kind not in STANDING_KINDS:
            raise MiningError(
                f"unknown standing-query kind {self.kind!r}; "
                f"expected one of: {', '.join(STANDING_KINDS)}"
            )
        info = measure_info(self.measure)
        if not info.anti_monotonic:
            # Footprint routing (and the threshold skip bound) both lean
            # on anti-monotonicity — same restriction as DynamicMiner.
            raise MiningError(
                f"standing queries require an anti-monotonic measure; "
                f"{self.measure!r} is not"
            )
        if self.min_support <= 0:
            raise MiningError("min_support must be positive")
        if self.max_pattern_nodes < 2:
            raise MiningError(
                f"max_pattern_nodes must be >= 2, got {self.max_pattern_nodes}"
            )
        if self.max_pattern_edges < 1:
            raise MiningError(
                f"max_pattern_edges must be >= 1, got {self.max_pattern_edges}"
            )
        if self.lazy and self.measure != "mni":
            raise MiningError("lazy evaluation is only defined for the MNI measure")
        if self.kind == "pattern":
            if self.pattern is None:
                raise MiningError("kind='pattern' requires a pattern")
            pattern = self.to_pattern()  # validates structure (labels, edges)
            if pattern.num_edges == 0:
                raise MiningError(
                    "a watched pattern must have at least one edge (edge "
                    "label pairs are what the dispatcher routes on)"
                )
        elif self.pattern is not None:
            raise MiningError("kind='threshold' does not take a pattern")
        if self.events is not None:
            unknown = [e for e in self.events if e not in EVENT_TYPES]
            if unknown:
                raise MiningError(
                    f"unknown event type(s) {unknown!r}; "
                    f"expected a subset of: {', '.join(EVENT_TYPES)}"
                )
            if not self.events:
                raise MiningError(
                    "events filter must not be empty (it would suppress "
                    "every event); omit it to receive all event types"
                )
        if self.delivery not in DELIVERY_MODES:
            raise MiningError(
                f"unknown delivery mode {self.delivery!r}; "
                f"expected one of: {', '.join(DELIVERY_MODES)}"
            )

    # ------------------------------------------------------------------
    # canonical serialization (wire form; mirrors MiningSpec)
    # ------------------------------------------------------------------
    def as_dict(self) -> Dict[str, Any]:
        """All fields in canonical (declaration) order, JSON-ready."""
        payload: Dict[str, Any] = {}
        for f in fields(self):
            value = getattr(self, f.name)
            if f.name == "pattern" and value is not None:
                value = {
                    "nodes": [list(node) for node in value[0]],
                    "edges": [list(edge) for edge in value[1]],
                }
            elif f.name == "events" and value is not None:
                value = list(value)
            payload[f.name] = value
        return payload

    def to_json(self) -> str:
        """The canonical wire form — one string per distinct request."""
        return json.dumps(self.as_dict(), separators=(",", ":"))

    @classmethod
    def from_json(cls, text: str) -> "StandingSpec":
        try:
            payload = json.loads(text)
        except ValueError as exc:
            raise MiningError(f"malformed StandingSpec JSON: {exc}") from exc
        if not isinstance(payload, dict):
            raise MiningError(
                f"StandingSpec JSON must be an object, got {type(payload).__name__}"
            )
        return cls.from_kwargs(**payload)

    @classmethod
    def from_kwargs(cls, **kwargs: Any) -> "StandingSpec":
        """Build a spec from loose kwargs (field names or CLI aliases)."""
        known = {f.name for f in fields(cls)}
        aliases = {k: v for k, v in _ALIASES.items() if v in known}
        resolved: Dict[str, Any] = {}
        for name, value in kwargs.items():
            target = aliases.get(name, name)
            if target not in known:
                raise MiningError(
                    f"unknown standing-query parameter {name!r}; expected "
                    f"one of: {', '.join(sorted(known | set(aliases)))}"
                )
            if target in resolved:
                raise MiningError(
                    f"standing-query parameter {target!r} given twice "
                    f"(aliases count as the same parameter)"
                )
            resolved[target] = value
        if resolved.get("pattern") is not None:
            resolved["pattern"] = _normalize_pattern(resolved["pattern"])
            resolved.setdefault("kind", "pattern")
        if resolved.get("events") is not None:
            requested = resolved["events"]
            if isinstance(requested, str):
                requested = [requested]
            requested = list(requested)
            unknown = [e for e in requested if e not in EVENT_TYPES]
            if unknown:
                # Validate *before* canonicalizing: the intersection below
                # would silently drop typos, turning a misspelt filter into
                # one that suppresses every event.
                raise MiningError(
                    f"unknown event type(s) {unknown!r}; "
                    f"expected a subset of: {', '.join(EVENT_TYPES)}"
                )
            # Canonical order + dedup so equal filters serialize equally.
            resolved["events"] = tuple(e for e in EVENT_TYPES if e in set(requested))
        return cls(**resolved)

    def replace(self, **changes: Any) -> "StandingSpec":
        if not changes:
            return self
        return _dataclass_replace(self, **changes)

    # ------------------------------------------------------------------
    # derived views
    # ------------------------------------------------------------------
    def to_pattern(self) -> Pattern:
        """The watched :class:`Pattern` (``kind='pattern'`` only)."""
        if self.pattern is None:
            raise MiningError("only kind='pattern' specs carry a pattern")
        nodes, edges = self.pattern
        return Pattern.from_edges(nodes, edges)

    def mining_spec(self) -> MiningSpec:
        """The one-shot :class:`MiningSpec` a threshold query watches."""
        return MiningSpec(
            measure=self.measure,
            min_support=self.min_support,
            max_pattern_nodes=self.max_pattern_nodes,
            max_pattern_edges=self.max_pattern_edges,
            lazy=self.lazy,
        )

    def footprint(self) -> Optional[FrozenSet[Tuple]]:
        """The static label-pair footprint (``None`` for threshold kind,
        whose watched pair set tracks the current frequent patterns)."""
        if self.kind != "pattern":
            return None
        return pattern_footprint(self.to_pattern())

    def cache_key(self) -> str:
        """Canonical form of the result-defining subset.

        Threshold queries answer exactly the derived mining question, so
        they share :meth:`MiningSpec.cache_key` — a subscription can be
        served from a cache entry a plain ``mine`` request (or the
        writer's maintained refresh) populated, and vice versa.
        """
        if self.kind == "threshold":
            return self.mining_spec().cache_key()
        return json.dumps(
            {
                "standing": "pattern",
                "certificate": canonical_certificate(self.to_pattern().graph),
                "measure": self.measure,
                "min_support": self.min_support,
                "lazy": self.lazy,
            },
            separators=(",", ":"),
        )


class AnswerEntry(NamedTuple):
    """One pattern's standing answer: support, occurrences, membership.

    ``num_occurrences`` is ``-1`` when occurrences were never enumerated
    (lazy evaluation) — matching :class:`FrequentPattern` exactly so
    answers diff byte-for-byte against one-shot mining results.
    """

    support: float
    num_occurrences: int
    frequent: bool


@dataclass(frozen=True)
class AnswerEvent:
    """One typed answer change, stamped with version + per-sub sequence.

    The event carries the *full new entry* (``support`` /
    ``num_occurrences`` / ``frequent``, all ``None`` for a removal), so
    replaying events is a pure state transition: no event ever needs its
    predecessor to be interpreted.  ``delta`` is the occurrence-count
    change when both sides were enumerated, else ``0``.
    """

    type: str
    certificate: str
    version: int
    seq: int
    support: Optional[float]
    num_occurrences: Optional[int]
    frequent: Optional[bool]
    delta: int = 0

    def payload(self) -> Dict[str, Any]:
        """The canonical JSON shape (also the notify-line event form)."""
        return {
            "type": self.type,
            "certificate": self.certificate,
            "version": self.version,
            "seq": self.seq,
            "support": self.support,
            "num_occurrences": self.num_occurrences,
            "frequent": self.frequent,
            "delta": self.delta,
        }

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any]) -> "AnswerEvent":
        return cls(
            type=payload["type"],
            certificate=payload["certificate"],
            version=payload["version"],
            seq=payload["seq"],
            support=payload["support"],
            num_occurrences=payload["num_occurrences"],
            frequent=payload["frequent"],
            delta=payload.get("delta", 0),
        )


Answer = Dict[str, AnswerEntry]


def answer_from_result(result: MiningResult) -> Answer:
    """A one-shot mining result as a standing answer (threshold kind)."""
    return {
        fp.certificate: AnswerEntry(fp.support, fp.num_occurrences, True)
        for fp in result.frequent
    }


def evaluate_standing(
    spec: StandingSpec,
    graph: LabeledGraph,
    *,
    result: Optional[MiningResult] = None,
    index: Any = None,
) -> Answer:
    """One-shot evaluation of a standing query against ``graph``.

    For threshold kind this is (or adopts, via ``result``) a full mine;
    for pattern kind it evaluates just the watched motif — ``index`` may
    pass a pre-patched :class:`GraphIndex` to skip index (re)builds.
    """
    if spec.kind == "threshold":
        if result is None:
            from .miner import mine_frequent_patterns

            result = mine_frequent_patterns(graph, spec=spec.mining_spec())
        return answer_from_result(result)
    from .parallel import evaluate_support

    pattern = spec.to_pattern()
    support, num_occurrences = evaluate_support(
        pattern,
        graph,
        spec.measure,
        lazy=spec.lazy,
        lazy_cap=max(1, math.ceil(spec.min_support)),
        max_occurrences=None,
        index_arg=index,
    )
    certificate = canonical_certificate(pattern.graph)
    return {
        certificate: AnswerEntry(support, num_occurrences, support >= spec.min_support)
    }


def diff_answer(
    old: Mapping[str, AnswerEntry],
    new: Mapping[str, AnswerEntry],
    *,
    version: int,
    seq_start: int = 0,
    event_filter: Optional[Sequence[str]] = None,
) -> Tuple[List[AnswerEvent], int]:
    """The typed events turning ``old`` into ``new``; ``(events, next_seq)``.

    At most one event per certificate per version, in sorted-certificate
    order, typed by priority: membership change (appeared / vanished /
    ``frequent`` flip) beats occurrence change beats support-only change.
    With ``event_filter`` set, suppressed events are never emitted (and
    never consume a sequence number) — exact reconstruction therefore
    requires an unfiltered subscription.
    """
    events: List[AnswerEvent] = []
    seq = seq_start
    allowed = None if event_filter is None else set(event_filter)
    for certificate in sorted(set(old) | set(new)):
        before = old.get(certificate)
        after = new.get(certificate)
        if before == after:
            continue
        delta = 0
        if (
            before is not None
            and after is not None
            and before.num_occurrences >= 0
            and after.num_occurrences >= 0
        ):
            delta = after.num_occurrences - before.num_occurrences
        if after is None:
            kind = "became_infrequent"
        elif before is None or after.frequent != before.frequent:
            kind = "became_frequent" if after.frequent else "became_infrequent"
        elif delta:
            kind = "occurrences_gained" if delta > 0 else "occurrences_lost"
        else:
            kind = "support_changed"
        if allowed is not None and kind not in allowed:
            continue
        events.append(
            AnswerEvent(
                type=kind,
                certificate=certificate,
                version=version,
                seq=seq,
                support=None if after is None else after.support,
                num_occurrences=None if after is None else after.num_occurrences,
                frequent=None if after is None else after.frequent,
                delta=delta,
            )
        )
        seq += 1
    return events, seq


def replay_answer(
    answer: Mapping[str, AnswerEntry], events: Sequence[AnswerEvent]
) -> Answer:
    """Apply ``events`` to a copy of ``answer`` (the reconstruction rule).

    Because every event carries the full new entry, replay is
    type-independent: ``support is None`` removes the certificate,
    anything else overwrites its entry.
    """
    state: Answer = dict(answer)
    for event in events:
        if event.support is None:
            state.pop(event.certificate, None)
        else:
            state[event.certificate] = AnswerEntry(
                event.support, event.num_occurrences, bool(event.frequent)
            )
    return state
