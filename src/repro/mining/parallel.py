"""Process-pool support evaluation for the frequent-subgraph miner.

Support evaluation dominates mining time and candidates at one search
level are independent of each other, so the miner can farm them out to a
:class:`~concurrent.futures.ProcessPoolExecutor`.  Design notes:

* the **data graph is shipped once per worker** (pool initializer), not
  once per candidate; each worker builds its own :class:`GraphIndex` on
  first use and reuses it for every candidate it evaluates;
* workers return plain ``(support, num_occurrences)`` tuples — patterns
  and certificates stay in the parent, so nothing model-sized crosses the
  process boundary back;
* results come back through ``Executor.map``, which preserves submission
  order, so mining results are **deterministic and identical to the
  serial path** regardless of worker count or scheduling.

The helpers live in their own module (not nested in the miner class) so
they are picklable under every ``multiprocessing`` start method.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..graph.labeled_graph import LabeledGraph
from ..graph.pattern import Pattern

#: Measures bounded above by sigma_MNI (the Section 4.4 chain plus PMVC),
#: and hence by the rarest pattern-node label's frequency in the data
#: graph.  For these, a candidate whose label-frequency bound already sits
#: below the threshold is pruned without enumerating a single occurrence
#: (the GraMi trick, applied identically on the indexed and brute paths).
LABEL_FREQUENCY_BOUNDED = frozenset(
    {"mni", "mi", "mvc", "mis", "mies", "lp_mvc", "lp_mies", "pmvc"}
)


def label_frequency_bound(pattern: Pattern, histogram: Dict) -> int:
    """``min_v |{u : lambda(u) = lambda_P(v)}|`` — an upper bound on MNI."""
    return min(
        (histogram.get(pattern.label_of(node), 0) for node in pattern.nodes()),
        default=0,
    )


def evaluate_support(
    pattern: Pattern,
    data: LabeledGraph,
    measure: str,
    *,
    lazy: bool,
    lazy_cap: int,
    max_occurrences: Optional[int],
    index_arg,
    histogram: Optional[Dict] = None,
    prune_below: Optional[float] = None,
) -> Tuple[float, int]:
    """Evaluate one candidate; returns ``(support, num_occurrences)``.

    ``num_occurrences`` is ``-1`` when occurrences were never enumerated —
    lazy mode, or a label-frequency-bound prune (``prune_below`` set, the
    measure in :data:`LABEL_FREQUENCY_BOUNDED`, and the bound already below
    the threshold; the returned support is then the bound itself, which
    over-states the true support but preserves every pruning decision).
    Shared by the serial miner and the process-pool workers so both modes
    make byte-identical decisions.
    """
    if lazy:
        from ..measures.lazy_mni import lazy_mni_support

        support = float(lazy_mni_support(pattern, data, cap=lazy_cap, index=index_arg))
        return support, -1
    if (
        prune_below is not None
        and histogram is not None
        and measure in LABEL_FREQUENCY_BOUNDED
    ):
        bound = label_frequency_bound(pattern, histogram)
        if bound < prune_below:
            return float(bound), -1
    from ..hypergraph.construction import HypergraphBundle
    from ..measures.base import compute_support

    bundle = HypergraphBundle.build(
        pattern, data, limit=max_occurrences, index=index_arg
    )
    support = compute_support(measure, pattern, data, bundle=bundle)
    return support, bundle.num_occurrences


#: Per-worker state installed by :func:`init_worker` (one dict per process).
_WORKER_STATE: Dict[str, object] = {}


def init_worker(
    data: LabeledGraph,
    measure: str,
    lazy: bool,
    lazy_cap: int,
    max_occurrences: Optional[int],
    use_index: bool,
    prune_below: Optional[float],
) -> None:
    """Pool initializer: stash the shared evaluation context in the worker."""
    if use_index:
        from ..index.graph_index import get_index

        get_index(data)  # build once; cached on the graph for all candidates
    _WORKER_STATE.clear()
    _WORKER_STATE.update(
        data=data,
        measure=measure,
        lazy=lazy,
        lazy_cap=lazy_cap,
        max_occurrences=max_occurrences,
        index_arg=None if use_index else False,
        histogram=data.label_histogram(),
        prune_below=prune_below,
    )


def evaluate_candidate(pattern: Pattern) -> Tuple[float, int]:
    """Evaluate one candidate in a worker (see :func:`evaluate_support`)."""
    state = _WORKER_STATE
    return evaluate_support(
        pattern,
        state["data"],  # type: ignore[arg-type]
        str(state["measure"]),
        lazy=bool(state["lazy"]),
        lazy_cap=int(state["lazy_cap"]),  # type: ignore[arg-type]
        max_occurrences=state["max_occurrences"],  # type: ignore[arg-type]
        index_arg=state["index_arg"],
        histogram=state["histogram"],  # type: ignore[arg-type]
        prune_below=state["prune_below"],  # type: ignore[arg-type]
    )
