"""Process-pool support evaluation for the frequent-subgraph miner.

Support evaluation dominates mining time and candidates at one search
level are independent of each other, so the miner can farm them out to a
:class:`~concurrent.futures.ProcessPoolExecutor`.  Design notes:

* the **data graph is shipped once per worker** (pool initializer), not
  once per candidate; each worker builds its own :class:`GraphIndex` on
  first use and reuses it for every candidate it evaluates;
* workers return plain ``(support, num_occurrences)`` tuples — patterns
  and certificates stay in the parent, so nothing model-sized crosses the
  process boundary back;
* results come back through ``Executor.map``, which preserves submission
  order, so mining results are **deterministic and identical to the
  serial path** regardless of worker count or scheduling.

For a sharded mining session (``FrequentSubgraphMiner(shards=k)``) the
pool's unit of work drops from one candidate to one **(candidate, shard)
pair**: workers rebuild the same :class:`~repro.partition.ShardedIndex`
from the shipped :class:`~repro.partition.Partition` (never re-partition
— the parent's assignment is authoritative), enumerate the candidate's
anchored occurrences in their halo-expanded shard, and ship the raw item
tuples (or per-node image scans in lazy mode) back for the parent to
merge exactly — so a single expensive candidate parallelizes across its
shards instead of serializing on one worker.

The helpers live in their own module (not nested in the miner class) so
they are picklable under every ``multiprocessing`` start method.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..graph.labeled_graph import LabeledGraph
from ..graph.pattern import Pattern

#: Measures bounded above by sigma_MNI (the Section 4.4 chain plus PMVC),
#: and hence by the rarest pattern-node label's frequency in the data
#: graph.  For these, a candidate whose label-frequency bound already sits
#: below the threshold is pruned without enumerating a single occurrence
#: (the GraMi trick, applied identically on the indexed and brute paths).
LABEL_FREQUENCY_BOUNDED = frozenset(
    {"mni", "mi", "mvc", "mis", "mies", "lp_mvc", "lp_mies", "pmvc"}
)


def label_frequency_bound(pattern: Pattern, histogram: Dict) -> int:
    """``min_v |{u : lambda(u) = lambda_P(v)}|`` — an upper bound on MNI."""
    return min(
        (histogram.get(pattern.label_of(node), 0) for node in pattern.nodes()),
        default=0,
    )


def evaluate_support(
    pattern: Pattern,
    data: LabeledGraph,
    measure: str,
    *,
    lazy: bool,
    lazy_cap: int,
    max_occurrences: Optional[int],
    index_arg,
    histogram: Optional[Dict] = None,
    prune_below: Optional[float] = None,
) -> Tuple[float, int]:
    """Evaluate one candidate; returns ``(support, num_occurrences)``.

    ``num_occurrences`` is ``-1`` when occurrences were never enumerated —
    lazy mode, or a label-frequency-bound prune (``prune_below`` set, the
    measure in :data:`LABEL_FREQUENCY_BOUNDED`, and the bound already below
    the threshold; the returned support is then the bound itself, which
    over-states the true support but preserves every pruning decision).
    Shared by the serial miner and the process-pool workers so both modes
    make byte-identical decisions.
    """
    if lazy:
        from ..measures.lazy_mni import lazy_mni_support

        support = float(lazy_mni_support(pattern, data, cap=lazy_cap, index=index_arg))
        return support, -1
    if (
        prune_below is not None
        and histogram is not None
        and measure in LABEL_FREQUENCY_BOUNDED
    ):
        bound = label_frequency_bound(pattern, histogram)
        if bound < prune_below:
            return float(bound), -1
    from ..hypergraph.construction import HypergraphBundle
    from ..measures.base import compute_support

    bundle = HypergraphBundle.build(
        pattern, data, limit=max_occurrences, index=index_arg
    )
    support = compute_support(measure, pattern, data, bundle=bundle)
    return support, bundle.num_occurrences


#: Per-worker state installed by :func:`init_worker` (one dict per process).
_WORKER_STATE: Dict[str, object] = {}


def init_worker(
    data: LabeledGraph,
    measure: str,
    lazy: bool,
    lazy_cap: int,
    max_occurrences: Optional[int],
    use_index: bool,
    prune_below: Optional[float],
    partition=None,
) -> None:
    """Pool initializer: stash the shared evaluation context in the worker.

    ``partition`` (a :class:`repro.partition.Partition`, or ``None`` for
    flat evaluation) carries the parent's shard assignment; the worker's
    :class:`~repro.partition.ShardedIndex` is built from it lazily on the
    first shard task, so flat sessions pay nothing.
    """
    if use_index:
        from ..index.graph_index import get_index

        get_index(data)  # build once; cached on the graph for all candidates
    _WORKER_STATE.clear()
    _WORKER_STATE.update(
        data=data,
        measure=measure,
        lazy=lazy,
        lazy_cap=lazy_cap,
        max_occurrences=max_occurrences,
        index_arg=None if use_index else False,
        histogram=data.label_histogram(),
        prune_below=prune_below,
        partition=partition,
        sharded=None,
    )


def _worker_sharded_index():
    """The worker's ShardedIndex, built once from the shipped partition.

    Only shard tasks reach this; a flat pooled session initializes its
    workers with ``partition=None`` and must never build a sharded index
    here — that would silently re-shard inside the worker and charge flat
    sessions for partition state the parent never shipped.
    """
    sharded = _WORKER_STATE.get("sharded")
    if sharded is None:
        assert _WORKER_STATE.get("partition") is not None, (
            "shard task reached a flat worker: init_worker was given "
            "partition=None, so no ShardedIndex may be built here"
        )
        from ..partition.sharded_index import ShardedIndex

        sharded = ShardedIndex(
            _WORKER_STATE["data"],  # type: ignore[arg-type]
            _WORKER_STATE["partition"],  # type: ignore[arg-type]
        )
        _WORKER_STATE["sharded"] = sharded
    return sharded


def evaluate_shard_task(task: Tuple[str, Pattern, int]):
    """Evaluate one sharded work item — ``("solo", p, _)`` or ``("part", p, s)``.

    ``solo`` — the candidate's whole footprint anchors in one shard, so
    every global occurrence lives there: the worker runs the complete
    sharded evaluation and returns the final ``(support,
    num_occurrences)`` pair — two numbers across the process boundary,
    and the measure computation parallelizes along with the enumeration.
    This is the common case under footprint-affine partitioning.

    ``part`` — the footprint spans shards, so exact merging needs the raw
    partial: anchored occurrence item tuples in eager mode, the per-node
    image scan in lazy mode, merged in the parent through
    :func:`repro.partition.evaluate.support_from_shard_items` /
    :func:`~repro.partition.evaluate.merge_lazy_partials`.  Either way
    the outcome is exact regardless of how work lands on processes.
    """
    from ..partition.evaluate import (
        shard_node_images,
        shard_occurrence_items,
        sharded_evaluate_support,
    )

    kind, pattern, shard_id = task
    state = _WORKER_STATE
    sharded = _worker_sharded_index()
    if kind == "solo":
        return sharded_evaluate_support(
            pattern,
            sharded,
            str(state["measure"]),
            lazy=bool(state["lazy"]),
            lazy_cap=int(state["lazy_cap"]),  # type: ignore[arg-type]
            max_occurrences=state["max_occurrences"],  # type: ignore[arg-type]
            index_arg=state["index_arg"],
            histogram=state["histogram"],  # type: ignore[arg-type]
            prune_below=state["prune_below"],  # type: ignore[arg-type]
        )
    if state["lazy"]:
        return shard_node_images(
            pattern,
            sharded,
            shard_id,
            cap=int(state["lazy_cap"]),  # type: ignore[arg-type]
            index=state["index_arg"],
        )
    return shard_occurrence_items(
        pattern,
        sharded,
        shard_id,
        index=state["index_arg"],
        limit=state["max_occurrences"],  # type: ignore[arg-type]
    )


def evaluate_candidate(pattern: Pattern) -> Tuple[float, int]:
    """Evaluate one candidate in a worker (see :func:`evaluate_support`)."""
    state = _WORKER_STATE
    return evaluate_support(
        pattern,
        state["data"],  # type: ignore[arg-type]
        str(state["measure"]),
        lazy=bool(state["lazy"]),
        lazy_cap=int(state["lazy_cap"]),  # type: ignore[arg-type]
        max_occurrences=state["max_occurrences"],  # type: ignore[arg-type]
        index_arg=state["index_arg"],
        histogram=state["histogram"],  # type: ignore[arg-type]
        prune_below=state["prune_below"],  # type: ignore[arg-type]
    )
