"""Candidate generation for pattern growth.

The miner grows patterns one edge at a time.  Candidates come in two kinds:

* **forward extensions** — attach a brand-new node (with some label) to an
  existing pattern node;
* **backward extensions** — add an edge between two existing pattern nodes.

To avoid generating candidates that cannot possibly occur, extensions are
derived from the *data graph's* observed structure: the set of adjacent
label pairs limits forward extensions, and backward extensions are only
proposed between nodes whose labels co-occur on a data edge.  This is the
standard single-graph pattern-growth recipe (GraMi-style search scheme);
completeness is preserved because every occurrence of a superpattern
projects onto an occurrence of the one-edge-smaller pattern.
"""

from __future__ import annotations

from typing import FrozenSet, Iterator, List, Optional, Set, Tuple

from ..graph.labeled_graph import Label, LabeledGraph
from ..graph.pattern import Pattern
from ..index.graph_index import GraphIndex


def adjacent_label_pairs(
    data: LabeledGraph, index: Optional[GraphIndex] = None
) -> Set[Tuple[Label, Label]]:
    """All (unordered, both orders stored) label pairs joined by a data edge.

    With an index this is a precomputed lookup; without one it scans the
    edge list (the brute-force reference path).
    """
    if index is not None:
        return set(index.adjacent_label_pairs())
    pairs: Set[Tuple[Label, Label]] = set()
    for u, v in data.edges():
        lu, lv = data.label_of(u), data.label_of(v)
        pairs.add((lu, lv))
        pairs.add((lv, lu))
    return pairs


def _seed_pattern(lu: Label, lv: Label) -> Pattern:
    # Canonical endpoint order, so indexed and edge-scan seed generation
    # produce literally identical patterns (not merely isomorphic ones).
    if repr(lv) < repr(lu):
        lu, lv = lv, lu
    return Pattern.from_edges(
        [("v1", lu), ("v2", lv)],
        [("v1", "v2")],
        name=f"seed:{lu}-{lv}",
    )


def single_edge_patterns(
    data: LabeledGraph, index: Optional[GraphIndex] = None
) -> List[Pattern]:
    """All distinct one-edge patterns occurring in the data graph.

    These seed the mining search; label pairs are deduplicated as
    unordered pairs.  With an index the seeds come straight from the
    label-pair edge lists (no edge scan); both paths return the same
    patterns in the same order.
    """
    if index is not None:
        seeds = [_seed_pattern(lu, lv) for lu, lv in index.distinct_edge_label_pairs()]
        return sorted(
            seeds, key=lambda p: repr(sorted(p.graph.labels().values(), key=repr))
        )
    seen: Set[FrozenSet] = set()
    seeds = []
    for u, v in data.edges():
        lu, lv = data.label_of(u), data.label_of(v)
        key = frozenset({(0, lu), (1, lv)}) if lu == lv else frozenset({lu, lv})
        if key in seen:
            continue
        seen.add(key)
        seeds.append(_seed_pattern(lu, lv))
    return sorted(
        seeds, key=lambda p: repr(sorted(p.graph.labels().values(), key=repr))
    )


def forward_extensions(
    pattern: Pattern, label_pairs: Set[Tuple[Label, Label]]
) -> Iterator[Pattern]:
    """All one-new-node extensions consistent with observed label pairs."""
    next_index = pattern.num_nodes + 1
    new_node = f"v{next_index}"
    while pattern.graph.has_vertex(new_node):
        next_index += 1
        new_node = f"v{next_index}"
    candidate_labels = sorted({pair[1] for pair in label_pairs}, key=repr)
    for anchor in pattern.nodes():
        anchor_label = pattern.label_of(anchor)
        for label in candidate_labels:
            if (anchor_label, label) not in label_pairs:
                continue
            yield pattern.extend_with_node(anchor, new_node, label)


def backward_extensions(
    pattern: Pattern, label_pairs: Set[Tuple[Label, Label]]
) -> Iterator[Pattern]:
    """All close-a-cycle extensions between existing non-adjacent nodes."""
    nodes = pattern.nodes()
    for i, u in enumerate(nodes):
        for v in nodes[i + 1:]:
            if pattern.graph.has_edge(u, v):
                continue
            if (pattern.label_of(u), pattern.label_of(v)) not in label_pairs:
                continue
            yield pattern.extend_with_edge(u, v)


def all_extensions(
    pattern: Pattern,
    label_pairs: Set[Tuple[Label, Label]],
    max_nodes: int,
    max_edges: int,
) -> Iterator[Pattern]:
    """Every candidate one-edge extension respecting the size limits."""
    if pattern.num_edges >= max_edges:
        return
    yield from backward_extensions(pattern, label_pairs)
    if pattern.num_nodes < max_nodes:
        yield from forward_extensions(pattern, label_pairs)
