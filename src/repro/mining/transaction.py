"""Transaction-setting support, for contrast with the single-graph setting.

The paper's introduction frames the problem: in a *transaction* database (a
collection of many small graphs) support is trivially the number of graphs
containing the pattern — anti-monotonic by construction.  The whole point
of the paper is that a *single* large graph has no such easy count.  This
module implements the transaction measure so examples and benchmarks can
show the two settings side by side, and provides the standard conversion
of a transaction database into one disjoint-union graph, on which every
single-graph measure in this library coincides with the transaction count
when patterns are connected.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from ..graph.labeled_graph import LabeledGraph
from ..graph.pattern import Pattern
from ..isomorphism.vf2 import has_subgraph_isomorphism


def transaction_support(pattern: Pattern, transactions: Sequence[LabeledGraph]) -> int:
    """The number of transaction graphs containing at least one occurrence.

    This is the classic anti-monotonic support of graph-transaction mining
    (Inokuchi et al.; Yan & Han's gSpan).
    """
    return sum(
        1 for graph in transactions if has_subgraph_isomorphism(pattern, graph)
    )


def disjoint_union(
    transactions: Iterable[LabeledGraph], name: str = "union"
) -> LabeledGraph:
    """Combine transaction graphs into one graph with namespaced vertices.

    Vertex ``v`` of transaction ``i`` becomes ``(i, v)``; components never
    touch, so occurrences of a connected pattern stay within one
    transaction.
    """
    union = LabeledGraph(name=name)
    for i, graph in enumerate(transactions):
        for vertex in graph.vertices():
            union.add_vertex((i, vertex), graph.label_of(vertex))
        for u, v in graph.edges():
            union.add_edge((i, u), (i, v))
    return union


def transaction_counts_match_single_graph(
    pattern: Pattern, transactions: Sequence[LabeledGraph]
) -> bool:
    """Sanity relation: on a disjoint union, MIS >= transaction support.

    Each containing transaction contributes at least one instance that is
    vertex-disjoint from every other transaction's instances, so the
    maximum independent set has at least one element per containing
    transaction.  (Used by tests; handy as an executable cross-check.)
    """
    from ..hypergraph.construction import HypergraphBundle
    from ..hypergraph.overlap import instance_overlap_graph
    from ..measures.mis import mis_support_of

    union = disjoint_union(transactions)
    bundle = HypergraphBundle.build(pattern, union)
    mis = mis_support_of(instance_overlap_graph(bundle.instances))
    return mis >= transaction_support(pattern, transactions)
