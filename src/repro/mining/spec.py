"""``MiningSpec`` — the one request object every mining entry point accepts.

Through PR 6 the mining parameter surface grew to a dozen loose kwargs
(``measure``, ``min_support``, ``lazy``, ``workers``, ``shards``,
``partition_method``, ``max_resident``, ``resident_workers``, ``window``,
...) threaded separately through :class:`FrequentSubgraphMiner`,
:class:`DynamicMiner`, :func:`mine_frequent_patterns`,
:func:`mine_stream`, and the CLI — with defaults re-declared at every
hop.  :class:`MiningSpec` consolidates them into one frozen, validated,
JSON-round-trippable dataclass:

* the **field defaults here are the single source of truth** — the
  library signatures and the CLI flag defaults are both derived from
  them (``tests/test_mining_spec.py`` pins the agreement);
* :meth:`MiningSpec.to_json` serializes in canonical field order, so a
  spec has exactly one wire form;
* :meth:`MiningSpec.cache_key` is the canonical form of the
  **result-affecting subset** of fields — execution-strategy knobs
  (``use_index``, ``workers``, ``shards``, paging, stream batching) are
  excluded because the equivalence suites pin that they never change
  the mined bytes.  The service layer's :class:`~repro.service.ResultCache`
  keys on ``(graph version, cache_key)``, so a brute-force request can be
  served from a cache entry an indexed request populated.

Every public entry point accepts ``spec=``; the legacy kwargs keep
working through :func:`resolve_spec`, which folds explicitly-passed
values over the spec (or over the defaults when no spec is given).
"""

from __future__ import annotations

import json
import warnings
from dataclasses import dataclass, fields, replace as _dataclass_replace
from typing import Any, Dict, Optional

from ..errors import MiningError
from ..measures.base import measure_info


class _Unset:
    """Sentinel for "parameter not passed" in the legacy-kwarg shims."""

    _instance = None

    def __new__(cls):
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "<unset>"


UNSET = _Unset()

#: Stream maintenance strategies accepted by :func:`mine_stream`.
STREAM_MODES = ("delta", "rebuild", "brute")

#: Fields whose value can change the mined *result* (certificates,
#: supports, occurrence counts).  Everything else is execution strategy:
#: the equivalence suites pin indexed == brute, sharded == flat,
#: pooled == serial, paged == resident byte-identical, so those fields
#: are deliberately not part of the result cache key.
RESULT_FIELDS = (
    "measure",
    "min_support",
    "max_pattern_nodes",
    "max_pattern_edges",
    "max_occurrences",
    "lazy",
)

#: Legacy/CLI spellings accepted by :meth:`MiningSpec.from_kwargs`.
_ALIASES = {
    "max_nodes": "max_pattern_nodes",
    "max_edges": "max_pattern_edges",
    "partition": "partition_method",
}


@dataclass(frozen=True)
class MiningSpec:
    """One validated, canonical description of a mining request.

    Structural fields (``measure`` .. ``lazy``) decide *what* is mined;
    strategy fields (``use_index`` .. ``resident_workers``) decide *how*
    — results are byte-identical across strategies; stream fields
    (``window``, ``batch_size``, ``mode``) only apply to update-stream
    replays and are ignored by one-shot mining.
    """

    measure: str = "mni"
    min_support: float = 2.0
    max_pattern_nodes: int = 5
    max_pattern_edges: int = 6
    max_occurrences: Optional[int] = None
    allow_non_anti_monotonic: bool = False
    lazy: bool = False
    use_index: bool = True
    workers: int = 1
    shards: int = 1
    partition_method: str = "hash"
    max_resident: Optional[int] = None
    resident_workers: bool = True
    window: Optional[int] = None
    batch_size: int = 1
    mode: str = "delta"

    def __post_init__(self) -> None:
        # Raises MeasureError with the available-measure list for typos.
        measure_info(self.measure)
        if self.min_support <= 0:
            raise MiningError("min_support must be positive")
        if self.max_pattern_nodes < 2:
            raise MiningError(
                f"max_pattern_nodes must be >= 2 (patterns have at least one "
                f"edge), got {self.max_pattern_nodes}"
            )
        if self.max_pattern_edges < 1:
            raise MiningError(
                f"max_pattern_edges must be >= 1, got {self.max_pattern_edges}"
            )
        if self.max_occurrences is not None and self.max_occurrences < 1:
            raise MiningError(
                f"max_occurrences must be >= 1 (or None), got {self.max_occurrences}"
            )
        if self.lazy and self.measure != "mni":
            raise MiningError("lazy evaluation is only defined for the MNI measure")
        if self.workers < 1:
            raise MiningError(f"workers must be >= 1, got {self.workers}")
        if self.shards < 1:
            raise MiningError(f"shards must be >= 1, got {self.shards}")
        if self.shards > 1:
            from ..partition.partitioner import PARTITION_METHODS

            if self.partition_method not in PARTITION_METHODS:
                raise MiningError(
                    f"unknown partition method {self.partition_method!r}; "
                    f"available: {', '.join(PARTITION_METHODS)}"
                )
        if self.max_resident is not None:
            if self.shards <= 1:
                raise MiningError(
                    "max_resident bounds resident *shards*; it requires "
                    f"shards > 1 (got shards={self.shards})"
                )
            if self.max_resident < 1:
                raise MiningError(f"max_resident must be >= 1, got {self.max_resident}")
        if self.window is not None and self.window < 1:
            raise MiningError("window must be >= 1 (or None for no expiry)")
        if self.batch_size < 1:
            raise MiningError("batch_size must be >= 1")
        if self.mode not in STREAM_MODES:
            raise MiningError(f"unknown mine-stream mode {self.mode!r}")

    # ------------------------------------------------------------------
    # canonical serialization
    # ------------------------------------------------------------------
    def as_dict(self) -> Dict[str, Any]:
        """All fields in canonical (declaration) order."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    def to_json(self) -> str:
        """The canonical wire form: declaration-ordered keys, compact.

        This string is the spec's identity — two specs are the same
        request iff their ``to_json`` outputs are equal.
        """
        return json.dumps(self.as_dict(), separators=(",", ":"))

    @classmethod
    def from_json(cls, text: str) -> "MiningSpec":
        """Parse (and validate) a spec from its JSON form."""
        try:
            payload = json.loads(text)
        except ValueError as exc:
            raise MiningError(f"malformed MiningSpec JSON: {exc}") from exc
        if not isinstance(payload, dict):
            raise MiningError(
                f"MiningSpec JSON must be an object, got {type(payload).__name__}"
            )
        return cls.from_kwargs(**payload)

    @classmethod
    def from_kwargs(cls, **kwargs: Any) -> "MiningSpec":
        """Build a spec from loose kwargs (field names or CLI aliases)."""
        known = {f.name for f in fields(cls)}
        resolved: Dict[str, Any] = {}
        for name, value in kwargs.items():
            target = _ALIASES.get(name, name)
            if target not in known:
                raise MiningError(
                    f"unknown mining parameter {name!r}; expected one of: "
                    f"{', '.join(sorted(known | set(_ALIASES)))}"
                )
            if target in resolved:
                raise MiningError(
                    f"mining parameter {target!r} given twice "
                    f"(aliases count as the same parameter)"
                )
            resolved[target] = value
        return cls(**resolved)

    def replace(self, **changes: Any) -> "MiningSpec":
        """A copy with ``changes`` applied (re-validated)."""
        if not changes:
            return self
        return _dataclass_replace(self, **changes)

    def cache_key(self) -> str:
        """Canonical form of the result-affecting fields (the cache key).

        Strategy fields are excluded on purpose: indexed/brute,
        sharded/flat, pooled/serial and paged/resident runs are pinned
        byte-identical by the equivalence suites, so caching their
        results under one key is sound — and turns "same question,
        different execution plan" into a cache hit.
        """
        return json.dumps(
            {name: getattr(self, name) for name in RESULT_FIELDS},
            separators=(",", ":"),
        )


#: The single source of truth for every mining default (library + CLI).
DEFAULT_SPEC = MiningSpec()


def resolve_spec(spec: Optional[MiningSpec], overrides: Dict[str, Any]) -> MiningSpec:
    """The legacy-kwarg shim shared by every entry point.

    ``overrides`` maps parameter names to values, with :data:`UNSET`
    marking "not passed".  Explicitly-passed values are folded over
    ``spec`` (or over the defaults when ``spec`` is ``None``), so
    ``f(data, spec=s, workers=4)`` means "``s``, but with 4 workers" and
    plain legacy calls behave exactly as before.

    Bare legacy kwargs (no ``spec=`` at all) are deprecated: they keep
    working, but emit a :class:`DeprecationWarning` pointing at
    ``MiningSpec.from_kwargs``.  Spec-plus-overrides stays first-class —
    that form is how strategy knobs are meant to be varied.
    """
    given = {name: value for name, value in overrides.items() if value is not UNSET}
    if spec is None:
        if given:
            warnings.warn(
                "legacy mining kwargs are deprecated; build a MiningSpec "
                "(MiningSpec.from_kwargs(...)) and pass it as spec=...",
                DeprecationWarning,
                stacklevel=3,
            )
        return MiningSpec.from_kwargs(**given)
    if not isinstance(spec, MiningSpec):
        raise MiningError(
            f"spec must be a MiningSpec, got {type(spec).__name__} "
            "(build one with MiningSpec.from_kwargs(...))"
        )
    return spec.replace(**given)
