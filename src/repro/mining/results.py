"""Result types for the frequent-subgraph miner."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..graph.pattern import Pattern


@dataclass(frozen=True)
class FrequentPattern:
    """One mined frequent pattern with its support value."""

    pattern: Pattern
    support: float
    certificate: str
    num_occurrences: int

    @property
    def num_nodes(self) -> int:
        return self.pattern.num_nodes

    @property
    def num_edges(self) -> int:
        return self.pattern.num_edges

    def __repr__(self) -> str:
        return (
            f"<FrequentPattern nodes={self.num_nodes} edges={self.num_edges} "
            f"support={self.support:g}>"
        )


@dataclass
class MiningStats:
    """Counters describing one mining run."""

    patterns_generated: int = 0
    patterns_evaluated: int = 0
    patterns_frequent: int = 0
    patterns_pruned: int = 0
    duplicates_skipped: int = 0
    support_calls: int = 0
    occurrence_enumerations: int = 0
    # Dynamic (delta-maintained) mining only — see repro.mining.dynamic:
    patterns_reused: int = 0
    patterns_skipped_unaffected: int = 0
    patterns_revived: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "patterns_generated": self.patterns_generated,
            "patterns_evaluated": self.patterns_evaluated,
            "patterns_frequent": self.patterns_frequent,
            "patterns_pruned": self.patterns_pruned,
            "duplicates_skipped": self.duplicates_skipped,
            "support_calls": self.support_calls,
            "occurrence_enumerations": self.occurrence_enumerations,
            "patterns_reused": self.patterns_reused,
            "patterns_skipped_unaffected": self.patterns_skipped_unaffected,
            "patterns_revived": self.patterns_revived,
        }


@dataclass
class MiningResult:
    """Everything a mining run produced."""

    frequent: List[FrequentPattern]
    stats: MiningStats
    measure: str
    min_support: float

    @property
    def num_frequent(self) -> int:
        return len(self.frequent)

    def by_size(self) -> Dict[int, List[FrequentPattern]]:
        """Frequent patterns grouped by edge count."""
        grouped: Dict[int, List[FrequentPattern]] = {}
        for item in self.frequent:
            grouped.setdefault(item.num_edges, []).append(item)
        return grouped

    def certificates(self) -> List[str]:
        """Canonical certificates of all frequent patterns (sorted)."""
        return sorted(item.certificate for item in self.frequent)

    def max_pattern_edges(self) -> int:
        """Largest frequent pattern size found (0 when none)."""
        if not self.frequent:
            return 0
        return max(item.num_edges for item in self.frequent)
