"""Frequent-subgraph miner for a single large graph.

A pattern-growth (gSpan/GraMi-flavored) search:

1. seed with every distinct one-edge pattern occurring in the data graph;
2. repeatedly pop a frequent pattern and generate its one-edge extensions
   (forward = new node, backward = close a cycle), deduplicated by
   canonical certificate;
3. evaluate the configured support measure; extensions below the threshold
   are pruned and — because every measure the paper proposes is
   **anti-monotonic** — pruning is *safe*: no frequent superpattern can hide
   behind an infrequent subpattern.

The support measure is pluggable (any name registered in
:mod:`repro.measures`); using a non-anti-monotonic measure (e.g. raw
occurrence count) makes pruning heuristic, which the miner flags via
``MiningError`` unless ``allow_non_anti_monotonic=True``.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Iterable, List, Optional, Set

from ..errors import MiningError
from ..graph.canonical import canonical_certificate
from ..graph.labeled_graph import LabeledGraph
from ..graph.pattern import Pattern
from ..hypergraph.construction import HypergraphBundle
from ..measures.base import compute_support, measure_info
from .extension import adjacent_label_pairs, all_extensions, single_edge_patterns
from .results import FrequentPattern, MiningResult, MiningStats


class FrequentSubgraphMiner:
    """Mine frequent patterns from one labeled graph.

    Parameters
    ----------
    data:
        The single data graph to mine.
    measure:
        Name of a registered support measure (default ``"mni"``, the
        cheapest anti-monotonic choice; ``"mi"``, ``"mvc"``, ``"mis"`` and
        the LP relaxations all work).
    min_support:
        Frequency threshold; patterns with support >= this are frequent.
    max_pattern_nodes / max_pattern_edges:
        Structural caps on the search.
    max_occurrences:
        Safety valve: stop enumerating occurrences of a candidate beyond
        this count and treat the candidate's support optimistically via its
        truncated occurrence list (exact for every pattern below the cap).
    allow_non_anti_monotonic:
        Permit measures whose pruning is not safe (for experimentation).
    lazy:
        Only for ``measure="mni"``: decide frequency with the GraMi-style
        threshold-bounded evaluation (anchored searches, no occurrence
        enumeration).  Reported supports are capped at ``min_support``.
    """

    def __init__(
        self,
        data: LabeledGraph,
        measure: str = "mni",
        min_support: float = 2.0,
        max_pattern_nodes: int = 5,
        max_pattern_edges: int = 6,
        max_occurrences: Optional[int] = None,
        allow_non_anti_monotonic: bool = False,
        lazy: bool = False,
    ) -> None:
        info = measure_info(measure)
        if not info.anti_monotonic and not allow_non_anti_monotonic:
            raise MiningError(
                f"measure {measure!r} is not anti-monotonic; pruning would be "
                "unsound (pass allow_non_anti_monotonic=True to experiment)"
            )
        if min_support <= 0:
            raise MiningError("min_support must be positive")
        if lazy and measure != "mni":
            raise MiningError("lazy evaluation is only defined for the MNI measure")
        self.data = data
        self.measure = measure
        self.min_support = min_support
        self.max_pattern_nodes = max_pattern_nodes
        self.max_pattern_edges = max_pattern_edges
        self.max_occurrences = max_occurrences
        self.lazy = lazy
        self._label_pairs = adjacent_label_pairs(data)

    # ------------------------------------------------------------------
    def _support_of(self, pattern: Pattern, stats: MiningStats) -> FrequentPattern:
        """Evaluate the measure for one candidate, recording stats."""
        stats.support_calls += 1
        if self.lazy:
            from ..measures.lazy_mni import lazy_mni_support

            cap = max(1, int(-(-self.min_support // 1)))  # ceil for float thresholds
            support = float(lazy_mni_support(pattern, self.data, cap=cap))
            return FrequentPattern(
                pattern=pattern,
                support=support,
                certificate=canonical_certificate(pattern.graph),
                num_occurrences=-1,  # occurrences never enumerated
            )
        stats.occurrence_enumerations += 1
        bundle = HypergraphBundle.build(pattern, self.data, limit=self.max_occurrences)
        support = compute_support(self.measure, pattern, self.data, bundle=bundle)
        return FrequentPattern(
            pattern=pattern,
            support=support,
            certificate=canonical_certificate(pattern.graph),
            num_occurrences=bundle.num_occurrences,
        )

    def mine(self) -> MiningResult:
        """Run the search; returns every frequent pattern found."""
        stats = MiningStats()
        frequent: List[FrequentPattern] = []
        seen: Set[str] = set()
        queue: Deque[Pattern] = deque()

        for seed in single_edge_patterns(self.data):
            stats.patterns_generated += 1
            certificate = canonical_certificate(seed.graph)
            if certificate in seen:
                stats.duplicates_skipped += 1
                continue
            seen.add(certificate)
            stats.patterns_evaluated += 1
            evaluated = self._support_of(seed, stats)
            if evaluated.support >= self.min_support:
                stats.patterns_frequent += 1
                frequent.append(evaluated)
                queue.append(seed)
            else:
                stats.patterns_pruned += 1

        while queue:
            pattern = queue.popleft()
            for extension in all_extensions(
                pattern,
                self._label_pairs,
                max_nodes=self.max_pattern_nodes,
                max_edges=self.max_pattern_edges,
            ):
                stats.patterns_generated += 1
                certificate = canonical_certificate(extension.graph)
                if certificate in seen:
                    stats.duplicates_skipped += 1
                    continue
                seen.add(certificate)
                stats.patterns_evaluated += 1
                evaluated = self._support_of(extension, stats)
                if evaluated.support >= self.min_support:
                    stats.patterns_frequent += 1
                    frequent.append(evaluated)
                    queue.append(extension)
                else:
                    stats.patterns_pruned += 1

        frequent.sort(key=lambda fp: (fp.num_edges, -fp.support, fp.certificate))
        return MiningResult(
            frequent=frequent,
            stats=stats,
            measure=self.measure,
            min_support=self.min_support,
        )


def mine_frequent_patterns(
    data: LabeledGraph,
    measure: str = "mni",
    min_support: float = 2.0,
    max_pattern_nodes: int = 5,
    max_pattern_edges: int = 6,
    max_occurrences: Optional[int] = None,
    allow_non_anti_monotonic: bool = False,
    lazy: bool = False,
) -> MiningResult:
    """Convenience one-call mining entry point (see :class:`FrequentSubgraphMiner`)."""
    miner = FrequentSubgraphMiner(
        data,
        measure=measure,
        min_support=min_support,
        max_pattern_nodes=max_pattern_nodes,
        max_pattern_edges=max_pattern_edges,
        max_occurrences=max_occurrences,
        allow_non_anti_monotonic=allow_non_anti_monotonic,
        lazy=lazy,
    )
    return miner.mine()
