"""Frequent-subgraph miner for a single large graph.

A pattern-growth (gSpan/GraMi-flavored) search:

1. seed with every distinct one-edge pattern occurring in the data graph;
2. repeatedly take a frequent pattern and generate its one-edge extensions
   (forward = new node, backward = close a cycle), deduplicated by
   canonical certificate;
3. evaluate the configured support measure; extensions below the threshold
   are pruned and — because every measure the paper proposes is
   **anti-monotonic** — pruning is *safe*: no frequent superpattern can hide
   behind an infrequent subpattern.

The search is organized **level-synchronously** (all candidates with k+1
edges are generated from the level-k survivors, deduplicated, then
evaluated as a batch).  This is the same traversal the old FIFO queue
performed — seeds are all one-edge patterns, each extension adds exactly
one edge — but it exposes the per-level batches needed for parallel
support evaluation (``workers > 1``) while keeping results identical.

The data graph's :class:`~repro.index.GraphIndex` is built **once per
mining session** and reused across every candidate evaluation (and every
worker builds its own copy exactly once); ``use_index=False`` selects the
brute-force reference path the equivalence tests compare against.

The support measure is pluggable (any name registered in
:mod:`repro.measures`); using a non-anti-monotonic measure (e.g. raw
occurrence count) makes pruning heuristic, which the miner flags via
``MiningError`` unless ``allow_non_anti_monotonic=True``.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

from ..errors import MiningError
from ..graph.canonical import canonical_certificate
from ..graph.labeled_graph import LabeledGraph
from ..graph.pattern import Pattern
from ..index.graph_index import GraphIndex, get_index
from ..measures.base import measure_info
from ..obs import metrics as _metrics
from ..obs import trace as _trace
from ..obs.logs import get_logger
from .extension import adjacent_label_pairs, all_extensions, single_edge_patterns
from .results import FrequentPattern, MiningResult, MiningStats
from .spec import UNSET, MiningSpec, resolve_spec

_LOG = get_logger("mining.miner")


def record_session_metrics(stats: MiningStats, levels: int) -> None:
    """Flush one mining session's counters onto the active registry.

    Called once at session end (never per candidate — the hot loop pays
    nothing) by both the static and dynamic lattice walks; zero-valued
    counters still register, so every ``repro_miner_*`` name appears in
    snapshots from the first session on.
    """
    registry = _metrics.get_registry()
    registry.counter("repro_miner_sessions").inc()
    registry.counter("repro_miner_levels").inc(levels)
    # Declared here (not in the pool) so the name exists even when no
    # pool was ever constructed; incremented at the fallback sites.
    registry.counter("repro_pool_serial_fallbacks")
    # Declared here because pooled evaluation runs the matchers inside
    # worker processes: the counters are per-process, and the parent's
    # snapshot must still carry the names.
    registry.counter("repro_match_vf2_calls")
    registry.counter("repro_match_anchored_searches")
    for name, value in stats.as_dict().items():
        registry.counter(f"repro_miner_{name}").inc(value)


class FrequentSubgraphMiner:
    """Mine frequent patterns from one labeled graph.

    Parameters
    ----------
    data:
        The single data graph to mine.
    measure:
        Name of a registered support measure (default ``"mni"``, the
        cheapest anti-monotonic choice; ``"mi"``, ``"mvc"``, ``"mis"`` and
        the LP relaxations all work).
    min_support:
        Frequency threshold; patterns with support >= this are frequent.
    max_pattern_nodes / max_pattern_edges:
        Structural caps on the search.
    max_occurrences:
        Safety valve: stop enumerating occurrences of a candidate beyond
        this count and treat the candidate's support optimistically via its
        truncated occurrence list (exact for every pattern below the cap).
    allow_non_anti_monotonic:
        Permit measures whose pruning is not safe (for experimentation).
    lazy:
        Only for ``measure="mni"``: decide frequency with the GraMi-style
        threshold-bounded evaluation (anchored searches, no occurrence
        enumeration).  Reported supports are capped at ``min_support``.
    use_index:
        Route all matching through the data graph's acceleration index
        (built once, reused for every candidate).  ``False`` is the
        brute-force reference path; results are identical either way.
    workers:
        Evaluate same-level candidates concurrently in this many worker
        processes (``<= 1`` = in-process serial evaluation).  Result
        order, supports and statistics are deterministic and identical to
        the serial run.  Falls back to serial evaluation if worker
        processes cannot be spawned.
    shards:
        Partition the data graph into this many edge-disjoint shards
        (``repro.partition``) and evaluate support shard-by-shard: each
        candidate enumerates only its relevant halo-expanded shards and
        the per-shard results merge into exact global values — results
        are byte-identical to the unsharded run (with ``max_occurrences``
        set, truncation is still deterministic but may keep a different
        occurrence subset than the flat enumeration order would).
        ``shards=1`` (default) is the unsharded path, untouched.
        Composes with ``workers``: each shard is pinned to one
        long-lived shard-resident worker (``shard_id % workers``) that
        holds the shard's slice and halo expansions for the whole
        session, so shards of the same candidate evaluate in parallel
        and only constant-size requests cross the process boundary.
    partition_method:
        Partitioner for ``shards > 1`` — ``"hash"``, ``"label"``, or
        ``"edgecut"`` (see :func:`repro.partition.partition_edges`).
    max_resident:
        Out-of-core mode (requires ``shards > 1``): keep at most this
        many shards' halo-expanded views resident in parent memory; the
        least recently used shard spills to disk and is re-hydrated on
        demand (:class:`repro.partition.workers.ShardPager`).  Results
        are byte-identical regardless of eviction order.
    resident_workers:
        With ``False``, sharded pooled sessions use the per-task
        shipping pool (the pre-resident design: every worker receives
        the whole graph + partition and rebuilds its own sharded
        index).  Kept as the explicit benchmark baseline; results are
        identical either way.
    spec:
        A :class:`~repro.mining.spec.MiningSpec` carrying the whole
        parameter surface at once.  Explicit kwargs override the spec's
        fields; omitting both uses the spec defaults.  The kwargs above
        remain supported as a shim over the spec.
    """

    def __init__(
        self,
        data: LabeledGraph,
        measure=UNSET,
        min_support=UNSET,
        max_pattern_nodes=UNSET,
        max_pattern_edges=UNSET,
        max_occurrences=UNSET,
        allow_non_anti_monotonic=UNSET,
        lazy=UNSET,
        use_index=UNSET,
        workers=UNSET,
        shards=UNSET,
        partition_method=UNSET,
        max_resident=UNSET,
        resident_workers=UNSET,
        spec: Optional[MiningSpec] = None,
    ) -> None:
        spec = resolve_spec(
            spec,
            {
                "measure": measure,
                "min_support": min_support,
                "max_pattern_nodes": max_pattern_nodes,
                "max_pattern_edges": max_pattern_edges,
                "max_occurrences": max_occurrences,
                "allow_non_anti_monotonic": allow_non_anti_monotonic,
                "lazy": lazy,
                "use_index": use_index,
                "workers": workers,
                "shards": shards,
                "partition_method": partition_method,
                "max_resident": max_resident,
                "resident_workers": resident_workers,
            },
        )
        info = measure_info(spec.measure)
        if not info.anti_monotonic and not spec.allow_non_anti_monotonic:
            raise MiningError(
                f"measure {spec.measure!r} is not anti-monotonic; pruning would be "
                "unsound (pass allow_non_anti_monotonic=True to experiment)"
            )
        self.data = data
        self.spec = spec
        self.measure = spec.measure
        self.min_support = spec.min_support
        self.max_pattern_nodes = spec.max_pattern_nodes
        self.max_pattern_edges = spec.max_pattern_edges
        self.max_occurrences = spec.max_occurrences
        self.lazy = spec.lazy
        self.use_index = spec.use_index
        self.workers = spec.workers
        self.shards = spec.shards
        self.partition_method = spec.partition_method
        self.max_resident = spec.max_resident
        self.resident_workers = spec.resident_workers
        self._pager = None
        # Built once per mining session; every candidate evaluation, seed
        # generation, and extension proposal reuses it.  mine() re-syncs
        # against the graph's mutation version, so a graph mutated between
        # construction and mining never sees stale label pairs, histogram
        # counts, or prune bounds.
        self._index_arg = None if self.use_index else False
        self._index: Optional[GraphIndex] = None
        self._sharded = None
        self._session_version: Optional[int] = None
        self._sync_session_state()

    def _sync_session_state(self) -> None:
        """(Re)derive per-session state from the data graph when it changed."""
        if self._session_version == self.data.mutation_version():
            return
        self._index = get_index(self.data) if self.use_index else None
        self._label_pairs = adjacent_label_pairs(self.data, index=self._index)
        self._histogram = (
            self._index.label_histogram()
            if self._index
            else self.data.label_histogram()
        )
        if self._pager is not None:
            # The old index (and any spills derived from it) is obsolete.
            self._pager.close()
            self._pager = None
        if self.shards > 1:
            from ..partition.sharded_index import ShardedIndex

            self._sharded = ShardedIndex.build(
                self.data, self.shards, self.partition_method
            )
            if self.max_resident is not None:
                from ..partition.workers import ShardPager

                self._pager = ShardPager(self._sharded, self.max_resident)
        else:
            self._sharded = None
        self._session_version = self.data.mutation_version()

    # ------------------------------------------------------------------
    @property
    def _lazy_cap(self) -> int:
        """Ceiling of the (possibly fractional) threshold for lazy mode."""
        return max(1, math.ceil(self.min_support))

    def _record(
        self,
        pattern: Pattern,
        certificate: str,
        support: float,
        num_occurrences: int,
        stats: MiningStats,
    ) -> FrequentPattern:
        """The single stats-bookkeeping + result-assembly path.

        Both the serial evaluator and the process-pool outcome loop feed
        through here, so serial and parallel runs cannot drift apart.
        """
        stats.support_calls += 1
        if num_occurrences >= 0:
            stats.occurrence_enumerations += 1
        return FrequentPattern(
            pattern=pattern,
            support=support,
            certificate=certificate,
            num_occurrences=num_occurrences,
        )

    def _support_of(
        self, pattern: Pattern, certificate: str, stats: MiningStats
    ) -> FrequentPattern:
        """Evaluate the measure for one candidate, recording stats."""
        if self._sharded is not None:
            from ..partition.evaluate import sharded_evaluate_support

            support, num_occurrences = sharded_evaluate_support(
                pattern,
                self._sharded,
                self.measure,
                lazy=self.lazy,
                lazy_cap=self._lazy_cap,
                max_occurrences=self.max_occurrences,
                index_arg=self._index_arg,
                histogram=self._histogram,
                prune_below=self.min_support,
            )
            return self._record(pattern, certificate, support, num_occurrences, stats)
        from .parallel import evaluate_support

        support, num_occurrences = evaluate_support(
            pattern,
            self.data,
            self.measure,
            lazy=self.lazy,
            lazy_cap=self._lazy_cap,
            max_occurrences=self.max_occurrences,
            index_arg=self._index_arg,
            histogram=self._histogram,
            prune_below=self.min_support,
        )
        return self._record(pattern, certificate, support, num_occurrences, stats)

    # ------------------------------------------------------------------
    def _evaluate_level(
        self,
        level: Sequence[Tuple[Pattern, str]],
        stats: MiningStats,
        pool,
    ) -> Tuple[List[FrequentPattern], object]:
        """Evaluate one level's candidates in order; returns (results, pool).

        ``ProcessPoolExecutor`` spawns workers lazily, so environments
        that cannot fork only fail here, at the first ``map`` — not in
        :meth:`_make_pool`.  Any pool-infrastructure failure (spawn
        refused, workers killed) shuts the pool down and re-evaluates the
        level serially; the returned pool is then ``None`` so the rest of
        the run stays serial.  Evaluation is pure, so the retry changes
        nothing but wall-clock time.
        """
        from concurrent.futures import BrokenExecutor

        outcomes = None
        if pool is not None and self._sharded is not None:
            try:
                outcomes = self._pooled_sharded_outcomes(level, pool)
            except (OSError, BrokenExecutor) as exc:
                _LOG.warning(
                    "shard worker pool failed mid-level (%s); re-evaluating "
                    "the level serially and staying serial for this run",
                    exc,
                )
                _metrics.counter("repro_pool_serial_fallbacks").inc()
                pool.shutdown(wait=False, cancel_futures=True)
                pool = None
        elif pool is not None:
            from .parallel import evaluate_candidate

            patterns = [pattern for pattern, _ in level]
            chunksize = max(1, len(patterns) // (self.workers * 4))
            try:
                outcomes = list(
                    pool.map(evaluate_candidate, patterns, chunksize=chunksize)
                )
            except (OSError, BrokenExecutor) as exc:
                _LOG.warning(
                    "worker pool failed mid-level (%s); re-evaluating the "
                    "level serially and staying serial for this run",
                    exc,
                )
                _metrics.counter("repro_pool_serial_fallbacks").inc()
                pool.shutdown(wait=False, cancel_futures=True)
                pool = None
        if outcomes is None:
            return (
                [
                    self._support_of(pattern, certificate, stats)
                    for pattern, certificate in level
                ],
                pool,
            )
        evaluated = [
            self._record(pattern, certificate, support, num_occurrences, stats)
            for (pattern, certificate), (support, num_occurrences) in zip(
                level, outcomes
            )
        ]
        return evaluated, pool

    def _pooled_sharded_outcomes(
        self, level: Sequence[Tuple[Pattern, str]], pool
    ) -> List[Tuple[float, int]]:
        """One level through the pool at (candidate, shard) granularity.

        The parent plans each candidate exactly as the serial sharded
        evaluator would — same prune bound, same relevant-shard set, same
        flat fallback for unshardable patterns — routes the planned
        (candidate, shard) tasks through the shared planner/merger
        (:func:`repro.partition.workers.pooled_outcomes`), and merges
        each candidate's shard partials through the shared merge helpers.
        Outcomes are therefore byte-identical to the serial sharded run,
        which in turn matches the unsharded one — for the shard-resident
        pool and the per-task-shipping reference pool alike.
        """
        from ..partition.workers import (
            ExecutorShardRunner,
            ShardWorkerPool,
            pooled_outcomes,
        )
        from .parallel import evaluate_support

        runner = (
            pool
            if isinstance(pool, ShardWorkerPool)
            else ExecutorShardRunner(pool, self.workers)
        )

        def flat_evaluate(pattern: Pattern) -> Tuple[float, int]:
            return evaluate_support(
                pattern,
                self.data,
                self.measure,
                lazy=self.lazy,
                lazy_cap=self._lazy_cap,
                max_occurrences=self.max_occurrences,
                index_arg=self._index_arg,
                histogram=self._histogram,
                prune_below=self.min_support,
            )

        return pooled_outcomes(
            [pattern for pattern, _ in level],
            self._sharded,
            runner,
            measure=self.measure,
            lazy=self.lazy,
            lazy_cap=self._lazy_cap,
            max_occurrences=self.max_occurrences,
            flat_evaluate=flat_evaluate,
            histogram=self._histogram,
            prune_below=self.min_support,
        )

    def _make_pool(self):
        """A process pool for support evaluation, or None (serial).

        Sharded sessions get the shard-resident worker pool by default
        (``resident_workers=False`` selects the per-task shipping
        executor instead); flat sessions keep the candidate-level
        executor — initialized **without** a partition, so flat workers
        never pay sharded pickling or rebuild a sharded index.  Any
        construction failure degrades to the serial path, which produces
        identical results; the degrade path for workers that die later
        lives in :meth:`_evaluate_level`.
        """
        if self.workers <= 1:
            return None
        if self._sharded is not None and self.resident_workers:
            try:
                from ..partition.workers import ShardWorkerPool

                return ShardWorkerPool(
                    self.workers,
                    measure=self.measure,
                    lazy=self.lazy,
                    lazy_cap=self._lazy_cap,
                    use_index=self.use_index,
                    depth=max(0, self.max_pattern_nodes - 2),
                )
            except (OSError, ValueError) as exc:
                _LOG.warning(
                    "could not start the shard worker pool (%s); mining serially",
                    exc,
                )
                _metrics.counter("repro_pool_serial_fallbacks").inc()
                return None
        try:
            from concurrent.futures import ProcessPoolExecutor

            from .parallel import init_worker

            return ProcessPoolExecutor(
                max_workers=self.workers,
                initializer=init_worker,
                initargs=(
                    self.data,
                    self.measure,
                    self.lazy,
                    self._lazy_cap,
                    self.max_occurrences,
                    self.use_index,
                    self.min_support,
                    self._sharded.partition if self._sharded is not None else None,
                ),
            )
        except (OSError, ValueError) as exc:
            # Restricted environments (no usable start method, no
            # /dev/shm): degrade to the serial path, which produces
            # identical results.
            _LOG.warning(
                "could not start the worker pool (%s); mining serially", exc
            )
            _metrics.counter("repro_pool_serial_fallbacks").inc()
            return None

    def mine(self) -> MiningResult:
        """Run the search; returns every frequent pattern found."""
        self._sync_session_state()
        stats = MiningStats()
        frequent: List[FrequentPattern] = []
        seen: set = set()
        levels = 0

        with _trace.span(
            "mine",
            measure=self.measure,
            min_support=self.min_support,
            shards=self.shards,
            workers=self.workers,
        ) as mine_span:
            level: List[Tuple[Pattern, str]] = []
            with _trace.span("seeds") as seed_span:
                for seed in single_edge_patterns(self.data, index=self._index):
                    stats.patterns_generated += 1
                    certificate = canonical_certificate(seed.graph)
                    if certificate in seen:
                        stats.duplicates_skipped += 1
                        continue
                    seen.add(certificate)
                    level.append((seed, certificate))
                seed_span.set(seeds=len(level))

            pool = self._make_pool()
            try:
                while level:
                    levels += 1
                    frequent_before = stats.patterns_frequent
                    pruned_before = stats.patterns_pruned
                    generated_before = stats.patterns_generated
                    with _trace.span(
                        "level", level=levels, candidates=len(level)
                    ) as level_span:
                        stats.patterns_evaluated += len(level)
                        survivors: List[Pattern] = []
                        with _trace.span("evaluate", candidates=len(level)):
                            results, pool = self._evaluate_level(level, stats, pool)
                        for evaluated in results:
                            if evaluated.support >= self.min_support:
                                stats.patterns_frequent += 1
                                frequent.append(evaluated)
                                survivors.append(evaluated.pattern)
                            else:
                                stats.patterns_pruned += 1
                        next_level: List[Tuple[Pattern, str]] = []
                        with _trace.span("extend"):
                            for pattern in survivors:
                                for extension in all_extensions(
                                    pattern,
                                    self._label_pairs,
                                    max_nodes=self.max_pattern_nodes,
                                    max_edges=self.max_pattern_edges,
                                ):
                                    stats.patterns_generated += 1
                                    certificate = canonical_certificate(
                                        extension.graph
                                    )
                                    if certificate in seen:
                                        stats.duplicates_skipped += 1
                                        continue
                                    seen.add(certificate)
                                    next_level.append((extension, certificate))
                        level_span.set(
                            frequent=stats.patterns_frequent - frequent_before,
                            pruned=stats.patterns_pruned - pruned_before,
                            generated=stats.patterns_generated - generated_before,
                        )
                    level = next_level
            except BaseException:
                # Interrupt/failure path: never *wait* for in-flight work —
                # a Ctrl-C during a long level must not hang on shutdown.
                if pool is not None:
                    pool.shutdown(wait=False, cancel_futures=True)
                raise
            if pool is not None:
                pool.shutdown()

            frequent.sort(key=lambda fp: (fp.num_edges, -fp.support, fp.certificate))
            mine_span.set(levels=levels, frequent=len(frequent))
        record_session_metrics(stats, levels)
        return MiningResult(
            frequent=frequent,
            stats=stats,
            measure=self.measure,
            min_support=self.min_support,
        )


def mine_frequent_patterns(
    data: LabeledGraph,
    measure=UNSET,
    min_support=UNSET,
    max_pattern_nodes=UNSET,
    max_pattern_edges=UNSET,
    max_occurrences=UNSET,
    allow_non_anti_monotonic=UNSET,
    lazy=UNSET,
    use_index=UNSET,
    workers=UNSET,
    shards=UNSET,
    partition_method=UNSET,
    max_resident=UNSET,
    resident_workers=UNSET,
    spec: Optional[MiningSpec] = None,
) -> MiningResult:
    """Convenience one-call mining entry point (see :class:`FrequentSubgraphMiner`)."""
    miner = FrequentSubgraphMiner(
        data,
        measure=measure,
        min_support=min_support,
        max_pattern_nodes=max_pattern_nodes,
        max_pattern_edges=max_pattern_edges,
        max_occurrences=max_occurrences,
        allow_non_anti_monotonic=allow_non_anti_monotonic,
        lazy=lazy,
        use_index=use_index,
        workers=workers,
        shards=shards,
        partition_method=partition_method,
        max_resident=max_resident,
        resident_workers=resident_workers,
        spec=spec,
    )
    return miner.mine()
