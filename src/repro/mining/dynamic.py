"""Dynamic frequent-subgraph mining over a growing data graph.

The static miners (:mod:`repro.mining.miner`, ``.incremental``) answer one
question about one graph snapshot.  :class:`DynamicMiner` maintains the
answer *under a stream of updates*: mutate the data graph, call
:meth:`DynamicMiner.refresh`, and the frequent-pattern set is brought
current — without re-evaluating patterns the updates cannot have touched.

Two observations make that sound for a **mixed insert/delete** stream
under the paper's anti-monotone support measures:

* every occurrence of a pattern ``P`` *gained or lost* by the batch must
  map at least one pattern edge onto an inserted or deleted data edge, so
  the labels of that data edge form a pair in ``P``'s **label-pair
  footprint** — a pattern whose footprint is disjoint from the batch's
  touched pairs (inserted and deleted alike) has an unchanged occurrence
  set, and every measure in this library is a pure function of the
  occurrence set, so its support (and occurrence count) is unchanged;
* a pattern that was *not* frequent before and has an unaffected
  footprint cannot be frequent now: sub-patterns only ever shed edges, so
  an ancestor's footprint is contained in ``P``'s — an unaffected ``P``
  has unaffected ancestors, its whole chain of supports is unchanged, and
  by anti-monotonicity it stays exactly as infrequent as it was.  (This
  is why the miner refuses non-anti-monotone measures.)

So the refresh re-runs the pattern-growth search but, per candidate:
known-frequent + unaffected footprint -> **reuse** the cached result;
unknown + unaffected -> **skip** (provably infrequent); affected ->
re-evaluate through the shared :func:`repro.mining.parallel.evaluate_support`
path.  Deletions can only shrink supports, so an affected pattern may
drop out of the frequent set — and its pruned descendants may *resurface*
after later insertions: the lattice walk regenerates candidates from
frequent parents each refresh, so revival is automatically bounded to the
touched footprint (``stats.patterns_revived`` counts patterns that
re-entered the frequent set on a delta refresh).  Results are
byte-identical to a from-scratch mine of the current graph (certificates,
supports, occurrence counts — pinned by ``tests/test_dynamic_mining.py``);
only the work differs, which ``stats.patterns_reused`` /
``stats.patterns_skipped_unaffected`` report.

Observation gaps (e.g. after :meth:`DynamicMiner.detach`) are answered
with a full re-mine.  The data graph's index rides along through an
:class:`~repro.index.delta.IndexMaintainer`, so the ``GraphIndex`` is
patched in O(delta) — insertions and deletions alike — rather than
rebuilt per batch; ``use_index=False`` keeps the brute-force reference
path alive, and rebuild-per-batch via
:func:`repro.mining.miner.mine_frequent_patterns` is the reference mode of
:func:`mine_stream` (CLI: ``repro-graph mine-stream``, including the
sliding-window workload ``--window N`` that expires the oldest live
stream edges).  With ``shards=k`` (CLI ``--shards K --partition M``) the
stream runs over the partitioned evaluator: the delta mode keeps one
delta-maintained :class:`~repro.partition.ShardedIndex` alive across the
whole stream while the reference modes re-partition per batch.
"""

from __future__ import annotations

import math
import weakref
from collections import deque
from dataclasses import dataclass
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from ..errors import MiningError
from ..graph.canonical import canonical_certificate
from ..graph.labeled_graph import Label, LabeledGraph, normalize_edge
from ..graph.pattern import Pattern
from ..index.delta import (
    PATCHABLE_DELTAS,
    AnyDelta,
    EdgeAdded,
    EdgeRemoved,
    IndexMaintainer,
)
from ..index.graph_index import _label_pair_key
from ..measures.base import measure_info
from ..obs import metrics as _metrics
from ..obs import trace as _trace
from ..obs.logs import get_logger
from .extension import adjacent_label_pairs, all_extensions, single_edge_patterns
from .parallel import evaluate_support
from .results import FrequentPattern, MiningResult, MiningStats
from .spec import UNSET, MiningSpec, resolve_spec

_LOG = get_logger("mining.dynamic")

LabelPair = Tuple[Label, Label]

#: A graph update as parsed from an update stream (see
#: :func:`repro.graph.io.parse_update_stream`): ``("v", vertex, label)``,
#: ``("e", u, v)``, ``("de", u, v)`` or ``("dv", vertex)``.
GraphUpdate = Tuple


def apply_update(graph: LabeledGraph, update: GraphUpdate) -> None:
    """Apply one parsed update op to ``graph``."""
    kind = update[0]
    if kind == "v":
        graph.add_vertex(update[1], update[2])
    elif kind == "e":
        graph.add_edge(update[1], update[2])
    elif kind == "de":
        graph.remove_edge(update[1], update[2])
    elif kind == "dv":
        graph.remove_vertex(update[1])
    else:
        raise MiningError(
            f"unknown update kind {kind!r} (expected 'v', 'e', 'de' or 'dv')"
        )


def pattern_footprint(pattern: Pattern) -> FrozenSet[LabelPair]:
    """The canonical label pairs realized by ``pattern``'s edges."""
    graph = pattern.graph
    return frozenset(
        _label_pair_key(graph.label_of(u), graph.label_of(v)) for u, v in graph.edges()
    )


class _MinerResources:
    """Everything a :class:`DynamicMiner` must give back, held *outside* it.

    The graph subscription, the index/sharded maintainers, the persistent
    worker pool, the per-refresh executor, and the out-of-core pager all
    outlive a miner that is simply dropped on the floor — the graph keeps
    the observers alive and the pool keeps OS processes alive.  Keeping
    them on a separate object lets a ``weakref.finalize`` on the miner
    call :meth:`release` without referencing the miner itself (which
    would keep it alive forever), so constructed-and-abandoned miners
    cannot leak subscriptions or workers even when refresh never ran.

    :meth:`release` is idempotent and re-runnable: each step takes and
    nulls its slot first, so an explicit ``detach()`` followed by the
    finalizer (or a second ``detach()``) is a no-op, and a failure partway
    through releases the rest on the next call.
    """

    __slots__ = (
        "graph",
        "observer",
        "maintainer",
        "sharded_maintainer",
        "pool",
        "pager",
        "refresh_executor",
    )

    def __init__(self) -> None:
        self.graph: Optional[LabeledGraph] = None
        self.observer = None
        self.maintainer = None
        self.sharded_maintainer = None
        self.pool = None
        self.pager = None
        self.refresh_executor = None

    def release(self) -> None:
        """Unsubscribe + detach + shut down everything still held.

        Never waits on in-flight work: this runs on the interrupt path
        and inside GC finalization, where blocking is unacceptable.
        """
        graph, observer = self.graph, self.observer
        self.graph = self.observer = None
        if graph is not None and observer is not None:
            graph.unsubscribe(observer)
        maintainer, self.maintainer = self.maintainer, None
        if maintainer is not None:
            maintainer.detach()
        sharded, self.sharded_maintainer = self.sharded_maintainer, None
        if sharded is not None:
            sharded.detach()
        pool, self.pool = self.pool, None
        if pool is not None:
            pool.shutdown(wait=False, cancel_futures=True)
        executor, self.refresh_executor = self.refresh_executor, None
        if executor is not None:
            executor.shutdown(wait=False, cancel_futures=True)
        pager, self.pager = self.pager, None
        if pager is not None:
            pager.close()


class DynamicMiner:
    """Maintain the frequent-pattern set of one graph under updates.

    Construct over a live :class:`LabeledGraph`; the miner subscribes to
    the graph's mutation-observer hook.  Mutate the graph freely (directly
    or via :meth:`apply`), then call :meth:`refresh` to get a
    :class:`MiningResult` for the *current* graph.  Parameters mirror
    :class:`~repro.mining.miner.FrequentSubgraphMiner` (measure must be
    anti-monotonic — the delta reuse argument depends on it).

    With ``use_index=True`` (default) the graph's acceleration index is
    delta-patched between refreshes through an
    :class:`~repro.index.delta.IndexMaintainer`; ``use_index=False`` is
    the brute-force reference path.  With ``shards=k > 1`` the data
    graph additionally rides a delta-maintained
    :class:`~repro.partition.ShardedIndex` (kept current in O(delta) by
    a :class:`~repro.partition.ShardedIndexMaintainer` — no re-partition
    per batch) and every affected candidate evaluates through the
    halo-aware sharded path; results stay byte-identical to the flat
    run.  An optional :class:`~repro.partition.RebalancePolicy` lets
    skewed streams trigger shard rebalancing between refreshes.

    ``workers=n > 1`` (sharded sessions only — the delta path has no
    other task granularity, so flat parallelism would be silently
    dropped; it raises instead) evaluates affected candidates through
    one **persistent** shard-resident worker pool
    (:class:`~repro.partition.ShardWorkerPool`): workers keep their
    shard views across refreshes and the parent re-ships only slices
    that deltas actually dirtied.  ``resident_workers=False`` selects
    the per-refresh executor instead — workers are respawned and the
    whole graph re-shipped every refresh (the reference lifecycle the
    resident pool exists to avoid).  ``max_resident=N`` bounds resident
    shard views through an out-of-core
    :class:`~repro.partition.ShardPager` that survives policy-triggered
    re-partitions.
    """

    def __init__(
        self,
        data: LabeledGraph,
        measure=UNSET,
        min_support=UNSET,
        max_pattern_nodes=UNSET,
        max_pattern_edges=UNSET,
        lazy=UNSET,
        use_index=UNSET,
        shards=UNSET,
        partition_method=UNSET,
        rebalance=None,
        workers=UNSET,
        max_resident=UNSET,
        resident_workers=UNSET,
        spec: Optional[MiningSpec] = None,
    ) -> None:
        spec = resolve_spec(
            spec,
            {
                "measure": measure,
                "min_support": min_support,
                "max_pattern_nodes": max_pattern_nodes,
                "max_pattern_edges": max_pattern_edges,
                "lazy": lazy,
                "use_index": use_index,
                "shards": shards,
                "partition_method": partition_method,
                "workers": workers,
                "max_resident": max_resident,
                "resident_workers": resident_workers,
            },
        )
        info = measure_info(spec.measure)
        if not info.anti_monotonic:
            raise MiningError(
                f"measure {spec.measure!r} is not anti-monotonic; dynamic "
                "maintenance relies on anti-monotone pruning and reuse"
            )
        if spec.workers > 1 and spec.shards <= 1:
            # Delta maintenance evaluates one affected candidate at a
            # time; (candidate, shard) tasks are its only parallel
            # granularity.  Refusing beats silently mining serially.
            raise MiningError(
                "workers > 1 requires shards > 1 under delta maintenance "
                f"(got workers={spec.workers}, shards={spec.shards}); use the "
                "rebuild/brute stream modes for flat parallelism"
            )
        self.data = data
        self.spec = spec
        self.measure = spec.measure
        self.min_support = spec.min_support
        self.max_pattern_nodes = spec.max_pattern_nodes
        self.max_pattern_edges = spec.max_pattern_edges
        self.lazy = spec.lazy
        self.use_index = spec.use_index
        self.shards = spec.shards
        self.partition_method = spec.partition_method
        self.workers = spec.workers
        self.max_resident = spec.max_resident
        self.resident_workers = spec.resident_workers
        # Every releasable resource lives on ``_resources`` so the
        # finalizer below can give it all back without touching (and
        # thus without keeping alive) the miner itself.
        self._resources = _MinerResources()
        self._resources.graph = data
        self._pool_failed = False
        self._active_runner = None
        if self.use_index:
            self._maintainer = IndexMaintainer(data)
            self._resources.maintainer = self._maintainer
        else:
            self._maintainer = None
        self._sharded_maintainer = None
        if self.shards > 1:
            from ..partition.maintainer import ShardedIndexMaintainer

            self._sharded_maintainer = ShardedIndexMaintainer(
                data, self.shards, self.partition_method, policy=rebalance
            )
            self._resources.sharded_maintainer = self._sharded_maintainer
            if self.max_resident is not None:
                from ..partition.workers import ShardPager

                # Attached now, carried across policy re-partitions by
                # ShardedIndexMaintainer.sharded().
                self._pager = ShardPager(
                    self._sharded_maintainer.sharded(), self.max_resident
                )
        self._buffer: List[AnyDelta] = []
        self._observer = data.subscribe(self._buffer.append)
        self._resources.observer = self._observer
        self._attached = True
        # Abandoned miners (service shutdown, reader exception, plain GC)
        # release everything even if detach()/close() was never called.
        self._finalizer = weakref.finalize(self, self._resources.release)
        self._frequent: Dict[str, FrequentPattern] = {}
        # Certificates that were frequent in *some* earlier refresh; a
        # pattern re-entering the frequent set after deletions pruned it
        # is a revival (stats.patterns_revived), a first appearance not.
        self._ever_frequent: Set[str] = set()
        self._footprints: Dict[str, FrozenSet[LabelPair]] = {}
        # Candidate generation re-creates literally identical pattern
        # objects every refresh; their canonical certificates are the
        # single biggest recurring cost of the lattice walk, so memoize
        # them across refreshes keyed by the (hashable) graph signature.
        self._certificates: Dict[Tuple, str] = {}
        self._synced_version: Optional[int] = None
        self._last_result: Optional[MiningResult] = None

    # ------------------------------------------------------------------
    # The pool, pager, and per-refresh executor live on _resources (so
    # the finalizer can release them); these properties keep the miner's
    # own code — and tests that reach for miner._pool — unchanged.
    @property
    def _pool(self):
        return self._resources.pool

    @_pool.setter
    def _pool(self, value) -> None:
        self._resources.pool = value

    @property
    def _pager(self):
        return self._resources.pager

    @_pager.setter
    def _pager(self, value) -> None:
        self._resources.pager = value

    @property
    def _refresh_executor(self):
        return self._resources.refresh_executor

    @_refresh_executor.setter
    def _refresh_executor(self, value) -> None:
        self._resources.refresh_executor = value

    # ------------------------------------------------------------------
    @property
    def attached(self) -> bool:
        """True while the miner still observes the graph's mutations."""
        return self._attached

    def detach(self) -> None:
        """Stop observing (index and sharded maintainers included).

        Also tears down the persistent worker pool (without waiting —
        detach may run on the interrupt path) and closes the out-of-core
        pager.  Refreshes after a detach-era mutation fall back to a full
        re-mine — results stay correct, only the delta savings are lost.
        """
        self._attached = False
        self._resources.release()

    #: Explicit lifecycle alias: a service shutting its miner down reads
    #: better as ``close()`` than ``detach()``; they are the same release.
    close = detach

    def __enter__(self) -> "DynamicMiner":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.detach()

    @property
    def _lazy_cap(self) -> int:
        return max(1, math.ceil(self.min_support))

    # ------------------------------------------------------------------
    def apply(self, updates: Iterable[GraphUpdate]) -> int:
        """Apply parsed update ops to the graph; returns how many were applied."""
        count = 0
        for update in updates:
            apply_update(self.data, update)
            count += 1
        return count

    def refresh(self) -> MiningResult:
        """Bring the frequent-pattern set current; returns the full result."""
        target = self.data.mutation_version()
        if self._synced_version == target and self._last_result is not None:
            return self._last_result
        delta_pairs = self._consume_deltas(target)
        result = self._mine(delta_pairs)
        self._frequent = {fp.certificate: fp for fp in result.frequent}
        self._ever_frequent.update(self._frequent)
        self._synced_version = target
        self._last_result = result
        return result

    mine = refresh

    # ------------------------------------------------------------------
    def _consume_deltas(self, target: int) -> Optional[Set[LabelPair]]:
        """Canonical label pairs touched since the last refresh.

        Inserted and deleted edges both contribute their pair: any
        occurrence gained *or* lost must use a touched data edge.  Vertex
        deltas touch no pair — an added or removed isolated vertex cannot
        appear in any occurrence (patterns have no isolated nodes), and a
        ``VertexRemoved`` is always preceded by its incident
        ``EdgeRemoved`` deltas, which carry the pairs.

        ``None`` means "treat everything as affected" — first refresh, an
        unknown delta kind, or any gap in observation (detached, or a
        buffer that cannot replay the version counter contiguously).
        """
        # The subscribed observer is this list's bound .append — clear in
        # place, never swap the list out from under it.
        buffer = list(self._buffer)
        self._buffer.clear()
        synced = self._synced_version
        if synced is None or not self._attached:
            return None
        deltas = [d for d in buffer if d.version > synced]
        if not deltas:
            # Version moved but nothing observed: a gap; re-mine fully.
            return None if synced != target else set()
        if deltas[0].version != synced + 1 or deltas[-1].version != target:
            return None
        if any(b.version != a.version + 1 for a, b in zip(deltas, deltas[1:])):
            return None
        if not all(isinstance(d, PATCHABLE_DELTAS) for d in deltas):
            return None
        return {
            d.label_pair() for d in deltas if isinstance(d, (EdgeAdded, EdgeRemoved))
        }

    def _certificate(self, pattern: Pattern) -> str:
        key = pattern.graph.signature()
        certificate = self._certificates.get(key)
        if certificate is None:
            certificate = canonical_certificate(pattern.graph)
            self._certificates[key] = certificate
        return certificate

    def _footprint(self, pattern: Pattern, certificate: str) -> FrozenSet[LabelPair]:
        cached = self._footprints.get(certificate)
        if cached is None:
            cached = pattern_footprint(pattern)
            self._footprints[certificate] = cached
        return cached

    # ------------------------------------------------------------------
    def _acquire_runner(self, sharded):
        """The shard runner for one refresh, or ``None`` (serial).

        Resident mode reuses one :class:`ShardWorkerPool` across every
        refresh of the session; the reference mode spawns (and
        :meth:`_release_runner` tears down) a per-refresh executor that
        re-ships the whole graph and partition to fresh workers.  Any
        spawn failure degrades the whole session to serial — results are
        identical either way.
        """
        if self.workers <= 1 or sharded is None or self._pool_failed:
            return None
        if self.resident_workers:
            if self._pool is None:
                try:
                    from ..partition.workers import ShardWorkerPool

                    self._pool = ShardWorkerPool(
                        self.workers,
                        measure=self.measure,
                        lazy=self.lazy,
                        lazy_cap=self._lazy_cap,
                        use_index=self.use_index,
                        depth=max(0, self.max_pattern_nodes - 2),
                    )
                except (OSError, ValueError) as exc:
                    _LOG.warning(
                        "could not start the shard worker pool (%s); the "
                        "session evaluates serially from here on",
                        exc,
                    )
                    _metrics.counter("repro_pool_serial_fallbacks").inc()
                    self._pool_failed = True
                    return None
            return self._pool
        try:
            from concurrent.futures import ProcessPoolExecutor

            from ..partition.workers import ExecutorShardRunner
            from .parallel import init_worker

            executor = ProcessPoolExecutor(
                max_workers=self.workers,
                initializer=init_worker,
                initargs=(
                    self.data,
                    self.measure,
                    self.lazy,
                    self._lazy_cap,
                    None,
                    self.use_index,
                    self.min_support,
                    sharded.partition,
                ),
            )
        except (OSError, ValueError) as exc:
            _LOG.warning(
                "could not start the per-refresh executor (%s); the session "
                "evaluates serially from here on",
                exc,
            )
            _metrics.counter("repro_pool_serial_fallbacks").inc()
            self._pool_failed = True
            return None
        self._refresh_executor = executor
        return ExecutorShardRunner(executor, self.workers)

    def _release_runner(self, *, wait: bool = True) -> None:
        """End-of-refresh cleanup: per-refresh executors die, the
        resident pool lives on.  ``wait=False`` is the interrupt path —
        cancel instead of draining."""
        self._active_runner = None
        if self._refresh_executor is not None:
            self._refresh_executor.shutdown(wait=wait, cancel_futures=not wait)
            self._refresh_executor = None

    def _drop_runner(self) -> None:
        """A pool-infrastructure failure: go serial for good."""
        _LOG.warning(
            "shard runner failed mid-refresh; affected candidates re-evaluate "
            "serially and the session stays serial"
        )
        _metrics.counter("repro_pool_serial_fallbacks").inc()
        self._pool_failed = True
        self._active_runner = None
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None
        if self._refresh_executor is not None:
            self._refresh_executor.shutdown(wait=False, cancel_futures=True)
            self._refresh_executor = None

    def _evaluate(
        self,
        pattern: Pattern,
        certificate: str,
        delta_pairs: Optional[Set[LabelPair]],
        histogram: Dict,
        stats: MiningStats,
        sharded=None,
    ) -> Optional[FrequentPattern]:
        """One candidate: reuse, skip (returns ``None``), or evaluate."""
        if delta_pairs is not None and not (
            self._footprint(pattern, certificate) & delta_pairs
        ):
            cached = self._frequent.get(certificate)
            if cached is not None:
                stats.patterns_reused += 1
                return cached
            stats.patterns_skipped_unaffected += 1
            return None
        stats.patterns_evaluated += 1
        stats.support_calls += 1
        outcome = None
        if sharded is not None and self._active_runner is not None:
            outcome = self._evaluate_pooled(pattern, sharded, histogram)
        if outcome is not None:
            support, num_occurrences = outcome
        elif sharded is not None:
            from ..partition.evaluate import sharded_evaluate_support

            support, num_occurrences = sharded_evaluate_support(
                pattern,
                sharded,
                self.measure,
                lazy=self.lazy,
                lazy_cap=self._lazy_cap,
                max_occurrences=None,
                index_arg=None if self.use_index else False,
                histogram=histogram,
                prune_below=self.min_support,
            )
        else:
            support, num_occurrences = evaluate_support(
                pattern,
                self.data,
                self.measure,
                lazy=self.lazy,
                lazy_cap=self._lazy_cap,
                max_occurrences=None,
                index_arg=None if self.use_index else False,
                histogram=histogram,
                prune_below=self.min_support,
            )
        if num_occurrences >= 0:
            stats.occurrence_enumerations += 1
        return FrequentPattern(
            pattern=pattern,
            support=support,
            certificate=certificate,
            num_occurrences=num_occurrences,
        )

    def _evaluate_pooled(
        self, pattern: Pattern, sharded, histogram: Dict
    ) -> Optional[Tuple[float, int]]:
        """One affected candidate through the shard runner.

        Plans/merges through the same :func:`pooled_outcomes` path as
        static pooled mining, so the outcome is byte-identical to the
        serial ``sharded_evaluate_support`` call it replaces.  Pool
        infrastructure failures return ``None`` (caller re-evaluates
        serially) and drop the runner for the rest of the session.
        """
        from concurrent.futures import BrokenExecutor

        from ..partition.workers import pooled_outcomes

        def flat_evaluate(p: Pattern) -> Tuple[float, int]:
            return evaluate_support(
                p,
                self.data,
                self.measure,
                lazy=self.lazy,
                lazy_cap=self._lazy_cap,
                max_occurrences=None,
                index_arg=None if self.use_index else False,
                histogram=histogram,
                prune_below=self.min_support,
            )

        try:
            return pooled_outcomes(
                [pattern],
                sharded,
                self._active_runner,
                measure=self.measure,
                lazy=self.lazy,
                lazy_cap=self._lazy_cap,
                max_occurrences=None,
                flat_evaluate=flat_evaluate,
                histogram=histogram,
                prune_below=self.min_support,
            )[0]
        except (OSError, BrokenExecutor):
            self._drop_runner()
            return None

    def _mine(self, delta_pairs: Optional[Set[LabelPair]]) -> MiningResult:
        """Pattern-growth closure with per-candidate reuse/skip/evaluate."""
        from .miner import record_session_metrics

        index = self._maintainer.index() if self._maintainer is not None else None
        sharded = (
            self._sharded_maintainer.sharded()
            if self._sharded_maintainer is not None
            else None
        )
        self._active_runner = self._acquire_runner(sharded)
        label_pairs = adjacent_label_pairs(self.data, index=index)
        histogram = (
            index.label_histogram()
            if index is not None
            else self.data.label_histogram()
        )
        stats = MiningStats()
        frequent: List[FrequentPattern] = []
        seen: Set[str] = set()
        levels = 0

        with _trace.span(
            "mine",
            dynamic=True,
            delta=delta_pairs is not None,
            measure=self.measure,
            min_support=self.min_support,
            shards=self.shards,
            workers=self.workers,
        ) as mine_span:
            level: List[Tuple[Pattern, str]] = []
            with _trace.span("seeds") as seed_span:
                for seed in single_edge_patterns(self.data, index=index):
                    stats.patterns_generated += 1
                    certificate = self._certificate(seed)
                    if certificate in seen:
                        stats.duplicates_skipped += 1
                        continue
                    seen.add(certificate)
                    level.append((seed, certificate))
                seed_span.set(seeds=len(level))

            try:
                while level:
                    levels += 1
                    frequent_before = stats.patterns_frequent
                    pruned_before = stats.patterns_pruned
                    reused_before = stats.patterns_reused
                    skipped_before = stats.patterns_skipped_unaffected
                    with _trace.span(
                        "level", level=levels, candidates=len(level)
                    ) as level_span:
                        next_level: List[Tuple[Pattern, str]] = []
                        for pattern, certificate in level:
                            evaluated = self._evaluate(
                                pattern,
                                certificate,
                                delta_pairs,
                                histogram,
                                stats,
                                sharded,
                            )
                            if evaluated is None:
                                continue
                            if evaluated.support >= self.min_support:
                                stats.patterns_frequent += 1
                                if (
                                    delta_pairs is not None
                                    and certificate not in self._frequent
                                    and certificate in self._ever_frequent
                                ):
                                    # Frequent again after an earlier refresh
                                    # pruned it — a deletion pushed it out, an
                                    # insertion revived it.
                                    stats.patterns_revived += 1
                                frequent.append(evaluated)
                                for extension in all_extensions(
                                    pattern,
                                    label_pairs,
                                    max_nodes=self.max_pattern_nodes,
                                    max_edges=self.max_pattern_edges,
                                ):
                                    stats.patterns_generated += 1
                                    ext_certificate = self._certificate(extension)
                                    if ext_certificate in seen:
                                        stats.duplicates_skipped += 1
                                        continue
                                    seen.add(ext_certificate)
                                    next_level.append((extension, ext_certificate))
                            else:
                                stats.patterns_pruned += 1
                        level_span.set(
                            frequent=stats.patterns_frequent - frequent_before,
                            pruned=stats.patterns_pruned - pruned_before,
                            reused=stats.patterns_reused - reused_before,
                            skipped=stats.patterns_skipped_unaffected
                            - skipped_before,
                        )
                    level = next_level
            except BaseException:
                # Interrupt/failure: never wait on in-flight pool work.
                self._release_runner(wait=False)
                raise
            self._release_runner()

            frequent.sort(key=lambda fp: (fp.num_edges, -fp.support, fp.certificate))
            mine_span.set(levels=levels, frequent=len(frequent))
        record_session_metrics(stats, levels)
        return MiningResult(
            frequent=frequent,
            stats=stats,
            measure=self.measure,
            min_support=self.min_support,
        )


@dataclass(frozen=True)
class StreamBatch:
    """One step of :func:`mine_stream`: the result after applying a batch."""

    batch: int
    updates_applied: int
    num_vertices: int
    num_edges: int
    result: MiningResult
    edges_expired: int = 0


class _SlidingWindow:
    """Expire the oldest live stream-inserted edges beyond a size cap.

    The window tracks edges inserted *by the stream* (base-graph edges
    never expire) in insertion order.  An explicit ``("de", u, v)`` update
    retires the edge from the window; re-inserting an edge restarts its
    age.  :meth:`expire` removes the oldest live edges from the graph
    until at most ``size`` remain, publishing ordinary ``EdgeRemoved``
    deltas — so the delta-maintained index and miner see window churn as
    plain deletions.
    """

    def __init__(self, size: int) -> None:
        self.size = size
        self._queue: deque = deque()  # (edge, insertion serial)
        self._live: Dict[Tuple, int] = {}  # edge -> latest insertion serial
        self._expired: set = set()  # expired, not (yet) re-inserted
        self._serial = 0

    def supersedes(self, update: GraphUpdate) -> bool:
        """True when expiry already satisfied this explicit deletion.

        A stream written against the un-windowed replay may delete an
        edge the window expired first; the record is then vacuously done
        (the edge is gone) rather than an error — without this, a valid
        stream could crash mid-replay purely because of the window size.
        """
        return update[0] == "de" and (
            normalize_edge(update[1], update[2]) in self._expired
        )

    def observe(self, update: GraphUpdate) -> None:
        kind = update[0]
        if kind == "e":
            edge = normalize_edge(update[1], update[2])
            self._serial += 1
            self._live[edge] = self._serial
            self._expired.discard(edge)
            self._queue.append((edge, self._serial))
        elif kind == "de":
            edge = normalize_edge(update[1], update[2])
            self._live.pop(edge, None)
            self._expired.discard(edge)
        elif kind == "dv":
            vertex = update[1]
            for edge in [e for e in self._live if vertex in e]:
                del self._live[edge]
            self._expired = {e for e in self._expired if vertex not in e}

    def expire(self, graph: LabeledGraph) -> int:
        expired = 0
        while len(self._live) > self.size:
            edge, serial = self._queue.popleft()
            if self._live.get(edge) == serial:
                del self._live[edge]
                self._expired.add(edge)
                graph.remove_edge(*edge)
                expired += 1
        return expired


class StreamApplier:
    """Apply update-stream records to a graph, window rules included.

    The one implementation of "what a batch of stream records does to the
    graph", shared by :func:`mine_stream`'s reference modes and the
    service writer thread (:mod:`repro.service`) — so windowed expiry,
    superseded deletions, and redundant-insert handling cannot drift
    between the library path and the daemon path.
    """

    def __init__(self, graph: LabeledGraph, window: Optional[int] = None) -> None:
        if window is not None and window < 1:
            raise MiningError("window must be >= 1 (or None for no expiry)")
        self.graph = graph
        self._sliding = _SlidingWindow(window) if window is not None else None

    def apply(self, update: GraphUpdate) -> None:
        """Apply one record (window bookkeeping included, no expiry yet)."""
        sliding = self._sliding
        if sliding is None:
            apply_update(self.graph, update)
            return
        if sliding.supersedes(update):
            sliding.observe(update)  # the record is vacuously done
            return
        # An insertion of an edge the graph already has is an idempotent
        # no-op; the window must not claim it (it belongs to the base
        # graph, or keeps its original age).
        redundant = update[0] == "e" and self.graph.has_edge(update[1], update[2])
        apply_update(self.graph, update)
        if not redundant:
            sliding.observe(update)

    def expire(self) -> int:
        """End-of-batch window expiry; returns how many edges aged out."""
        if self._sliding is None:
            return 0
        return self._sliding.expire(self.graph)

    def apply_batch(self, batch: Sequence[GraphUpdate]) -> Tuple[int, int]:
        """Apply a whole batch then expire; returns (applied, expired)."""
        for update in batch:
            self.apply(update)
        return len(batch), self.expire()


def mine_stream(
    data: LabeledGraph,
    updates: Sequence[GraphUpdate],
    *,
    batch_size=UNSET,
    mode=UNSET,
    measure=UNSET,
    min_support=UNSET,
    max_pattern_nodes=UNSET,
    max_pattern_edges=UNSET,
    lazy=UNSET,
    window=UNSET,
    shards=UNSET,
    partition_method=UNSET,
    workers=UNSET,
    max_resident=UNSET,
    resident_workers=UNSET,
    spec: Optional[MiningSpec] = None,
) -> Iterator[StreamBatch]:
    """Mine a live graph: apply ``updates`` in batches, yield per-batch results.

    Updates may mix insertions (``v`` / ``e``) and deletions (``de`` /
    ``dv``).  ``mode`` selects the maintenance strategy:

    * ``"delta"`` — :class:`DynamicMiner` with the delta-maintained index
      (the fast path);
    * ``"rebuild"`` — full re-mine per batch with a freshly rebuilt index
      (reference path);
    * ``"brute"`` — full re-mine per batch with ``use_index=False``
      (brute-force reference path).

    ``shards=k`` runs every mode over the sharded evaluator: the delta
    mode maintains one partition across the whole stream (deltas routed
    to their owning shards, no re-partition), while the reference modes
    re-partition + rebuild per batch — so comparing the two measures
    exactly the cost dynamic partition maintenance avoids.  Results are
    byte-identical to ``shards=1`` in every mode.

    ``workers=n`` is honored by **every** mode — never silently dropped:
    the delta mode evaluates through one persistent shard-resident pool
    across all batches (requires ``shards > 1``; it raises otherwise),
    and the reference modes pass workers into each per-batch mine.
    ``max_resident=N`` likewise rides along to bound resident shard
    views out-of-core, and ``resident_workers=False`` selects the
    per-task-shipping reference pool lifecycle.

    ``window=N`` turns the replay into a **sliding-window** workload: after
    each batch, the oldest live stream-inserted edges are removed until at
    most ``N`` remain (base-graph edges never expire; explicit deletions
    retire an edge from the window, re-insertions restart its age, and a
    ``de`` record for an edge the window already expired is vacuously
    satisfied instead of failing).  Expiry mutates the graph through the
    ordinary ``remove_edge`` path, so every mode sees identical graphs
    and ``StreamBatch.edges_expired`` reports the churn per batch.

    Batch 0 is the base graph before any update; all three modes yield
    byte-identical results per batch (pinned by the test suite).

    The delta mode is a thin client of the in-process
    :class:`~repro.service.GraphService`: batches go to the service's
    single writer thread (which applies them through this module's
    :class:`DynamicMiner` and caches each version's result), so the CLI
    stream, the daemon protocol, and in-process callers all exercise the
    same code path.  The reference modes stay service-free on purpose —
    they are the independent baseline the equivalence suites diff the
    service-mediated path against.
    """
    spec = resolve_spec(
        spec,
        {
            "batch_size": batch_size,
            "mode": mode,
            "measure": measure,
            "min_support": min_support,
            "max_pattern_nodes": max_pattern_nodes,
            "max_pattern_edges": max_pattern_edges,
            "lazy": lazy,
            "window": window,
            "shards": shards,
            "partition_method": partition_method,
            "workers": workers,
            "max_resident": max_resident,
            "resident_workers": resident_workers,
        },
    )
    if spec.mode == "delta":
        yield from _stream_via_service(data, updates, spec)
        return

    applier = StreamApplier(data, spec.window)

    def evaluate() -> MiningResult:
        from .miner import mine_frequent_patterns

        return mine_frequent_patterns(
            data, spec=spec.replace(use_index=(spec.mode == "rebuild"))
        )

    yield StreamBatch(0, 0, data.num_vertices, data.num_edges, evaluate())
    starts = range(0, len(updates), spec.batch_size)
    for batch_number, start in enumerate(starts, start=1):
        chunk = updates[start : start + spec.batch_size]
        applied, expired = applier.apply_batch(chunk)
        yield StreamBatch(
            batch_number,
            applied,
            data.num_vertices,
            data.num_edges,
            evaluate(),
            expired,
        )


def _stream_via_service(
    data: LabeledGraph, updates: Sequence[GraphUpdate], spec: MiningSpec
) -> Iterator[StreamBatch]:
    """The delta stream as a service client: one writer, ticketed batches."""
    from ..service import GraphService

    service = GraphService(data, maintain=spec)
    try:
        # Batch 0 = an empty batch: the writer publishes the base version
        # and runs (and caches) the initial refresh.
        starts = [None] + list(range(0, len(updates), spec.batch_size))
        for batch_number, start in enumerate(starts):
            chunk = [] if start is None else updates[start : start + spec.batch_size]
            info = service.submit_updates(chunk).wait()
            yield StreamBatch(
                batch_number,
                info.applied,
                info.num_vertices,
                info.num_edges,
                info.result,
                info.expired,
            )
    finally:
        # The service's miner (and its IndexMaintainer) subscribed to the
        # caller's graph; leave no observers behind once the stream is
        # consumed, abandoned, or fails mid-batch.
        service.stop()
