"""Frequent-subgraph mining over a single graph with pluggable measures."""

from .extension import (
    adjacent_label_pairs,
    all_extensions,
    backward_extensions,
    forward_extensions,
    single_edge_patterns,
)
from .dynamic import (
    DynamicMiner,
    StreamApplier,
    StreamBatch,
    mine_stream,
    pattern_footprint,
)
from .incremental import IncrementalMiner, mine_frequent_patterns_incremental
from .miner import FrequentSubgraphMiner, mine_frequent_patterns
from .results import FrequentPattern, MiningResult, MiningStats
from .spec import DEFAULT_SPEC, UNSET, MiningSpec, resolve_spec
from .standing import (
    AnswerEntry,
    AnswerEvent,
    StandingSpec,
    answer_from_result,
    diff_answer,
    evaluate_standing,
    replay_answer,
)
from .transaction import disjoint_union, transaction_support

__all__ = [
    "DynamicMiner",
    "StreamApplier",
    "StreamBatch",
    "mine_stream",
    "pattern_footprint",
    "MiningSpec",
    "DEFAULT_SPEC",
    "UNSET",
    "resolve_spec",
    "adjacent_label_pairs",
    "all_extensions",
    "backward_extensions",
    "forward_extensions",
    "single_edge_patterns",
    "FrequentSubgraphMiner",
    "IncrementalMiner",
    "mine_frequent_patterns_incremental",
    "mine_frequent_patterns",
    "FrequentPattern",
    "MiningResult",
    "MiningStats",
    "disjoint_union",
    "transaction_support",
    "StandingSpec",
    "AnswerEntry",
    "AnswerEvent",
    "answer_from_result",
    "diff_answer",
    "evaluate_standing",
    "replay_answer",
]
