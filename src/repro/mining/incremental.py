"""Embedding-propagating frequent-subgraph miner.

The baseline miner (:mod:`repro.mining.miner`) re-runs a full subgraph-
isomorphism search for every candidate.  Single-graph miners in the
GraMi/gSpan lineage avoid that: a child pattern's occurrences all restrict
to occurrences of its parent, so the parent's embedding list can be
*extended* instead of recomputed —

* **forward extension** (new node ``w`` attached to ``anchor``): for every
  parent occurrence ``f`` and every data neighbor ``u`` of ``f(anchor)``
  with the right label and ``u ∉ f(V_p)``, emit ``f ∪ {w -> u}``;
* **backward extension** (new edge ``(a, b)``): keep the parent occurrences
  where the data edge ``(f(a), f(b))`` exists.

Both directions are *complete* (every child occurrence arises this way)
and *sound* (every emitted map is a child occurrence), so the miner's
results are identical to the recomputing baseline — the test suite
asserts certificate-level equality, and ``tab9`` benchmarks the speedup.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Set, Tuple

from ..errors import MiningError
from ..graph.canonical import canonical_certificate
from ..graph.labeled_graph import LabeledGraph, Vertex
from ..graph.pattern import Pattern
from ..hypergraph.construction import HypergraphBundle
from ..index.graph_index import IndexArg, resolve_index
from ..isomorphism.matcher import Occurrence, find_occurrences
from ..measures.base import compute_support, measure_info
from .extension import adjacent_label_pairs, single_edge_patterns
from .results import FrequentPattern, MiningResult, MiningStats

Mapping = Dict[Vertex, Vertex]


def extend_occurrences_forward(
    data: LabeledGraph,
    occurrences: List[Mapping],
    anchor: Vertex,
    new_node: Vertex,
    new_label,
    index: IndexArg = None,
) -> List[Mapping]:
    """All child occurrences for a forward extension (see module docstring).

    With an index (the default), candidates come from the per-label
    pre-sorted adjacency lists — same canonical order as the brute
    ``sorted(..., key=repr)`` scan, without re-sorting per occurrence.
    Pass ``index=False`` to force the brute scan.
    """
    resolved = resolve_index(data, index)
    extended: List[Mapping] = []
    for mapping in occurrences:
        used = set(mapping.values())
        anchor_image = mapping[anchor]
        if resolved is not None:
            candidates = resolved.neighbors_with_label(anchor_image, new_label)
        else:
            candidates = sorted(
                data.neighbors_with_label(anchor_image, new_label), key=repr
            )
        for candidate in candidates:
            if candidate in used:
                continue
            child = dict(mapping)
            child[new_node] = candidate
            extended.append(child)
    return extended


def extend_occurrences_backward(
    data: LabeledGraph,
    occurrences: List[Mapping],
    node_a: Vertex,
    node_b: Vertex,
) -> List[Mapping]:
    """All child occurrences for a backward (cycle-closing) extension."""
    return [
        dict(mapping)
        for mapping in occurrences
        if data.has_edge(mapping[node_a], mapping[node_b])
    ]


class IncrementalMiner:
    """Frequent-subgraph mining with embedding propagation.

    Same contract and parameters as
    :class:`repro.mining.miner.FrequentSubgraphMiner`; the difference is
    purely in how occurrence lists are obtained (extended from the parent
    rather than recomputed), so results are identical pattern-for-pattern.

    ``max_embeddings`` caps the stored embedding list per pattern as a
    memory guard; exceeding it falls back to a fresh enumeration for that
    subtree (still exact).
    """

    def __init__(
        self,
        data: LabeledGraph,
        measure: str = "mni",
        min_support: float = 2.0,
        max_pattern_nodes: int = 5,
        max_pattern_edges: int = 6,
        max_embeddings: int = 200_000,
        allow_non_anti_monotonic: bool = False,
    ) -> None:
        info = measure_info(measure)
        if not info.anti_monotonic and not allow_non_anti_monotonic:
            raise MiningError(
                f"measure {measure!r} is not anti-monotonic; pruning would be "
                "unsound (pass allow_non_anti_monotonic=True to experiment)"
            )
        if min_support <= 0:
            raise MiningError("min_support must be positive")
        self.data = data
        self.measure = measure
        self.min_support = min_support
        self.max_pattern_nodes = max_pattern_nodes
        self.max_pattern_edges = max_pattern_edges
        self.max_embeddings = max_embeddings
        self._label_pairs = adjacent_label_pairs(data)

    # ------------------------------------------------------------------
    def _evaluate(
        self, pattern: Pattern, mappings: List[Mapping], stats: MiningStats
    ) -> FrequentPattern:
        """Build a bundle from pre-computed mappings and score the measure."""
        occurrences = [
            Occurrence.from_mapping(mapping, index=i)
            for i, mapping in enumerate(mappings)
        ]
        from ..hypergraph.construction import (
            instance_hypergraph_from,
            occurrence_hypergraph_from,
        )
        from ..isomorphism.matcher import group_into_instances

        instances = group_into_instances(pattern, occurrences)
        bundle = HypergraphBundle(
            pattern=pattern,
            data=self.data,
            occurrences=occurrences,
            instances=instances,
            occurrence_hg=occurrence_hypergraph_from(occurrences),
            instance_hg=instance_hypergraph_from(instances),
        )
        stats.support_calls += 1
        support = compute_support(self.measure, pattern, self.data, bundle=bundle)
        return FrequentPattern(
            pattern=pattern,
            support=support,
            certificate=canonical_certificate(pattern.graph),
            num_occurrences=len(occurrences),
        )

    def _child_candidates(
        self, pattern: Pattern, mappings: List[Mapping]
    ) -> List[Tuple[Pattern, List[Mapping]]]:
        """Every one-edge extension plus its propagated embedding list."""
        children: List[Tuple[Pattern, List[Mapping]]] = []
        nodes = pattern.nodes()
        # Backward extensions.
        if pattern.num_edges < self.max_pattern_edges:
            for i, a in enumerate(nodes):
                for b in nodes[i + 1:]:
                    if pattern.graph.has_edge(a, b):
                        continue
                    pair = (pattern.label_of(a), pattern.label_of(b))
                    if pair not in self._label_pairs:
                        continue
                    child = pattern.extend_with_edge(a, b)
                    children.append(
                        (child, extend_occurrences_backward(self.data, mappings, a, b))
                    )
        # Forward extensions.
        if (
            pattern.num_nodes < self.max_pattern_nodes
            and pattern.num_edges < self.max_pattern_edges
        ):
            next_index = pattern.num_nodes + 1
            new_node = f"v{next_index}"
            while pattern.graph.has_vertex(new_node):
                next_index += 1
                new_node = f"v{next_index}"
            labels = sorted({pair[1] for pair in self._label_pairs}, key=repr)
            for anchor in nodes:
                anchor_label = pattern.label_of(anchor)
                for label in labels:
                    if (anchor_label, label) not in self._label_pairs:
                        continue
                    child = pattern.extend_with_node(anchor, new_node, label)
                    children.append(
                        (
                            child,
                            extend_occurrences_forward(
                                self.data, mappings, anchor, new_node, label
                            ),
                        )
                    )
        return children

    def mine(self) -> MiningResult:
        """Run the embedding-propagating search."""
        stats = MiningStats()
        frequent: List[FrequentPattern] = []
        seen: Set[str] = set()
        queue: Deque[Tuple[Pattern, List[Mapping]]] = deque()

        for seed in single_edge_patterns(self.data):
            stats.patterns_generated += 1
            certificate = canonical_certificate(seed.graph)
            if certificate in seen:
                stats.duplicates_skipped += 1
                continue
            seen.add(certificate)
            stats.patterns_evaluated += 1
            stats.occurrence_enumerations += 1
            mappings = [occ.mapping for occ in find_occurrences(seed, self.data)]
            evaluated = self._evaluate(seed, mappings, stats)
            if evaluated.support >= self.min_support:
                stats.patterns_frequent += 1
                frequent.append(evaluated)
                queue.append((seed, mappings))
            else:
                stats.patterns_pruned += 1

        while queue:
            pattern, mappings = queue.popleft()
            for child, child_mappings in self._child_candidates(pattern, mappings):
                stats.patterns_generated += 1
                certificate = canonical_certificate(child.graph)
                if certificate in seen:
                    stats.duplicates_skipped += 1
                    continue
                seen.add(certificate)
                stats.patterns_evaluated += 1
                if len(child_mappings) > self.max_embeddings:
                    # Memory guard: recompute rather than store the blow-up.
                    stats.occurrence_enumerations += 1
                    child_mappings = [
                        occ.mapping for occ in find_occurrences(child, self.data)
                    ]
                evaluated = self._evaluate(child, child_mappings, stats)
                if evaluated.support >= self.min_support:
                    stats.patterns_frequent += 1
                    frequent.append(evaluated)
                    queue.append((child, child_mappings))
                else:
                    stats.patterns_pruned += 1

        frequent.sort(key=lambda fp: (fp.num_edges, -fp.support, fp.certificate))
        return MiningResult(
            frequent=frequent,
            stats=stats,
            measure=self.measure,
            min_support=self.min_support,
        )


def mine_frequent_patterns_incremental(
    data: LabeledGraph,
    measure: str = "mni",
    min_support: float = 2.0,
    max_pattern_nodes: int = 5,
    max_pattern_edges: int = 6,
) -> MiningResult:
    """Convenience entry point for :class:`IncrementalMiner`."""
    return IncrementalMiner(
        data,
        measure=measure,
        min_support=min_support,
        max_pattern_nodes=max_pattern_nodes,
        max_pattern_edges=max_pattern_edges,
    ).mine()
